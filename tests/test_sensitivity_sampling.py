"""Unit tests for repro.core.sensitivity (scores, standard / lightweight / welterweight)."""

import numpy as np
import pytest

from repro.clustering.cost import ClusteringSolution, clustering_cost
from repro.clustering.kmeans_pp import kmeans_plus_plus
from repro.core.sensitivity import (
    LightweightCoreset,
    SensitivitySampling,
    WelterweightCoreset,
    sample_by_scores,
    sensitivity_scores,
)


class TestSensitivityScores:
    def test_scores_sum_to_two_per_cluster(self, blobs):
        # Equation (1): within each cluster the cost terms sum to 1 and the
        # 1/|C| terms sum to 1, so the per-cluster total is exactly 2.
        solution = kmeans_plus_plus(blobs, 5, seed=0)
        scores = sensitivity_scores(blobs, solution)
        for cluster in range(5):
            members = solution.assignment == cluster
            if members.any():
                assert scores[members].sum() == pytest.approx(2.0, rel=1e-6)

    def test_scores_non_negative(self, imbalanced_blobs):
        solution = kmeans_plus_plus(imbalanced_blobs, 6, seed=1)
        scores = sensitivity_scores(imbalanced_blobs, solution)
        assert (scores >= 0).all()

    def test_far_points_get_higher_scores(self):
        points = np.concatenate([np.zeros((99, 2)), np.array([[100.0, 0.0]])])
        solution = ClusteringSolution(
            centers=np.zeros((1, 2)), assignment=np.zeros(100, dtype=np.int64)
        )
        scores = sensitivity_scores(points, solution)
        assert scores[-1] > scores[0] * 10

    def test_weighted_scores_respect_weights(self):
        points = np.array([[0.0], [1.0], [10.0]])
        weights = np.array([5.0, 5.0, 1.0])
        solution = ClusteringSolution(
            centers=np.array([[0.0]]), assignment=np.zeros(3, dtype=np.int64)
        )
        scores = sensitivity_scores(points, solution, weights=weights)
        mass = weights * scores
        # The cost-share plus size-share of the whole cluster is still 2.
        assert mass.sum() == pytest.approx(2.0, rel=1e-6)

    def test_nearest_assignment_used_when_requested(self, blobs):
        solution = kmeans_plus_plus(blobs, 4, seed=2)
        shuffled = ClusteringSolution(centers=solution.centers, assignment=None)
        scores = sensitivity_scores(blobs, shuffled, use_solution_assignment=False)
        assert scores.shape == (blobs.shape[0],)
        assert (scores >= 0).all()


class TestSampleByScores:
    def test_unbiased_cost_estimator(self, blobs, rng):
        solution = kmeans_plus_plus(blobs, 5, seed=0)
        scores = sensitivity_scores(blobs, solution)
        weights = np.ones(blobs.shape[0])
        centers = blobs[rng.choice(blobs.shape[0], size=5, replace=False)]
        true_cost = clustering_cost(blobs, centers)
        estimates = []
        for seed in range(25):
            indices, sample_weights = sample_by_scores(
                blobs, weights, scores, 300, np.random.default_rng(seed)
            )
            estimates.append(
                clustering_cost(blobs[indices], centers, weights=sample_weights)
            )
        assert np.mean(estimates) == pytest.approx(true_cost, rel=0.1)

    def test_degenerate_zero_scores_fall_back_to_uniform(self, blobs):
        indices, weights = sample_by_scores(
            blobs, np.ones(blobs.shape[0]), np.zeros(blobs.shape[0]), 10, np.random.default_rng(0)
        )
        assert indices.shape == (10,)
        assert weights.sum() == pytest.approx(blobs.shape[0])


class TestSensitivitySampling:
    def test_coreset_size_and_method(self, blobs):
        coreset = SensitivitySampling(k=6, seed=0).sample(blobs, 200)
        assert coreset.size == 200
        assert coreset.method == "sensitivity"
        assert coreset.metadata["j"] == 6.0

    def test_total_weight_close_to_n(self, blobs):
        coreset = SensitivitySampling(k=6, seed=0).sample(blobs, 300)
        assert coreset.total_weight == pytest.approx(blobs.shape[0], rel=0.25)

    def test_captures_outliers(self, outlier_data):
        # Unlike uniform sampling, sensitivity sampling essentially always
        # includes the far-away cluster.
        captured = 0
        for seed in range(10):
            coreset = SensitivitySampling(k=4, seed=seed).sample(outlier_data, 80)
            if (coreset.points[:, 0] > 250.0).any():
                captured += 1
        assert captured == 10

    def test_center_correction_adds_mass(self, blobs):
        plain = SensitivitySampling(k=5, seed=0).sample(blobs, 100)
        corrected = SensitivitySampling(k=5, include_center_correction=True, seed=0).sample(blobs, 100)
        assert corrected.size >= plain.size
        assert corrected.total_weight >= plain.total_weight - 1e-6

    def test_lloyd_refinement_option(self, blobs):
        coreset = SensitivitySampling(k=5, lloyd_iterations=3, seed=0).sample(blobs, 150)
        assert coreset.size == 150

    def test_kmedian_mode(self, blobs):
        coreset = SensitivitySampling(k=5, z=1, seed=0).sample(blobs, 150)
        assert coreset.size == 150

    def test_invalid_k_raises(self):
        with pytest.raises(ValueError):
            SensitivitySampling(k=0)


class TestLightweightCoreset:
    def test_size_weights_and_method(self, blobs):
        coreset = LightweightCoreset(seed=0).sample(blobs, 200)
        assert coreset.size == 200
        assert coreset.method == "lightweight"
        assert coreset.total_weight == pytest.approx(blobs.shape[0], rel=0.3)

    def test_runs_without_kmeans_solution(self, blobs):
        # Lightweight coresets only need the mean: they work even for k much
        # larger than what a candidate solution could provide.
        coreset = LightweightCoreset(seed=1).sample(blobs, 50)
        assert coreset.size == 50

    def test_degenerate_identical_points(self):
        points = np.ones((100, 3))
        coreset = LightweightCoreset(seed=0).sample(points, 10)
        assert coreset.total_weight == pytest.approx(100.0, rel=1e-6)

    def test_biased_toward_far_points(self, outlier_data):
        coreset = LightweightCoreset(seed=0).sample(outlier_data, 100)
        fraction_outliers = (coreset.points[:, 0] > 250.0).mean()
        # Outliers are 0.6% of the data but far from the mean, so they are
        # heavily over-represented in the sample.
        assert fraction_outliers > 0.05


class TestWelterweightCoreset:
    def test_default_j_is_log_k(self):
        sampler = WelterweightCoreset(k=64)
        assert sampler.j == 6
        assert sampler.name == "welterweight"

    def test_explicit_j(self):
        assert WelterweightCoreset(k=100, j=10).j == 10

    def test_sample_shape(self, blobs):
        coreset = WelterweightCoreset(k=8, seed=0).sample(blobs, 150)
        assert coreset.size == 150
        assert coreset.metadata["j"] == float(WelterweightCoreset(k=8).j)

    def test_interpolates_between_lightweight_and_sensitivity(self, imbalanced_blobs):
        # As j grows the candidate solution gets finer; the construction must
        # still produce valid, roughly mass-preserving compressions.
        for j in (1, 2, 4, 6):
            coreset = WelterweightCoreset(k=6, j=j, seed=0).sample(imbalanced_blobs, 200)
            assert coreset.total_weight == pytest.approx(imbalanced_blobs.shape[0], rel=0.5)

"""Unit tests for repro.geometry.johnson_lindenstrauss."""

import numpy as np
import pytest

from repro.geometry.johnson_lindenstrauss import (
    JohnsonLindenstraussEmbedding,
    jl_target_dimension,
    maybe_reduce_dimension,
)


class TestTargetDimension:
    def test_grows_with_k(self):
        assert jl_target_dimension(1000) >= jl_target_dimension(10)

    def test_respects_minimum(self):
        assert jl_target_dimension(2, minimum=12) >= 12

    def test_grows_as_epsilon_shrinks(self):
        assert jl_target_dimension(100, epsilon=0.1) > jl_target_dimension(100, epsilon=1.0)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            jl_target_dimension(0)
        with pytest.raises(ValueError):
            jl_target_dimension(10, epsilon=0.0)


class TestEmbedding:
    def test_output_shape(self, rng):
        points = rng.normal(size=(50, 100))
        embedding = JohnsonLindenstraussEmbedding(target_dim=10, seed=0)
        assert embedding.fit_transform(points).shape == (50, 10)

    def test_target_dim_derived_from_k(self, rng):
        points = rng.normal(size=(30, 200))
        embedding = JohnsonLindenstraussEmbedding(seed=0)
        projected = embedding.fit_transform(points, k=20)
        assert projected.shape[1] == jl_target_dimension(20)

    def test_missing_k_and_dim_raises(self, rng):
        with pytest.raises(ValueError):
            JohnsonLindenstraussEmbedding(seed=0).fit(rng.normal(size=(10, 20)))

    def test_transform_before_fit_raises(self, rng):
        with pytest.raises(RuntimeError):
            JohnsonLindenstraussEmbedding(target_dim=4).transform(rng.normal(size=(5, 8)))

    def test_dimension_mismatch_raises(self, rng):
        embedding = JohnsonLindenstraussEmbedding(target_dim=4, seed=0)
        embedding.fit(rng.normal(size=(10, 8)))
        with pytest.raises(ValueError):
            embedding.transform(rng.normal(size=(10, 9)))

    def test_same_seed_same_projection(self, rng):
        points = rng.normal(size=(20, 30))
        a = JohnsonLindenstraussEmbedding(target_dim=6, seed=5).fit_transform(points)
        b = JohnsonLindenstraussEmbedding(target_dim=6, seed=5).fit_transform(points)
        np.testing.assert_allclose(a, b)

    def test_norms_preserved_on_average(self, rng):
        # JL preserves squared norms in expectation; with 64 output dimensions
        # the relative error of the average norm should be small.
        points = rng.normal(size=(200, 500))
        embedding = JohnsonLindenstraussEmbedding(target_dim=64, seed=1)
        projected = embedding.fit_transform(points)
        original = np.einsum("ij,ij->i", points, points).mean()
        reduced = np.einsum("ij,ij->i", projected, projected).mean()
        assert reduced == pytest.approx(original, rel=0.2)

    def test_pairwise_distances_roughly_preserved(self, rng):
        points = rng.normal(size=(40, 300))
        projected = JohnsonLindenstraussEmbedding(target_dim=96, seed=2).fit_transform(points)
        original = np.linalg.norm(points[:, None] - points[None, :], axis=2)
        reduced = np.linalg.norm(projected[:, None] - projected[None, :], axis=2)
        mask = original > 0
        ratios = reduced[mask] / original[mask]
        assert 0.6 < ratios.mean() < 1.4


class TestMaybeReduceDimension:
    def test_low_dimensional_data_unchanged(self, rng):
        points = rng.normal(size=(30, 10))
        result = maybe_reduce_dimension(points, k=5, seed=0)
        np.testing.assert_array_equal(result, points)

    def test_high_dimensional_data_reduced(self, rng):
        points = rng.normal(size=(30, 500))
        result = maybe_reduce_dimension(points, k=5, threshold=64, seed=0)
        assert result.shape[1] < 500

"""Unit tests for the sampler advisor (Section 5.5) and the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.data.synthetic import c_outlier_dataset, gaussian_mixture
from repro.evaluation.advisor import diagnose_dataset, recommend_sampler


class TestDiagnoseDataset:
    def test_balanced_data_low_imbalance(self, blobs):
        diagnosis = diagnose_dataset(blobs, 6, seed=0)
        assert diagnosis.cluster_imbalance < 10.0
        assert 0.0 <= diagnosis.top_cost_share <= 1.0
        assert diagnosis.sample_size == blobs.shape[0]

    def test_outlier_data_flagged_by_tiny_cluster(self, outlier_data):
        # The probe solution places a center on the outlier cluster (its D²
        # mass is enormous), so the danger shows up as a vanishingly small
        # cluster rather than as residual cost share.
        diagnosis = diagnose_dataset(outlier_data, 4, seed=0)
        assert diagnosis.smallest_cluster_fraction < 0.05
        assert diagnosis.cluster_imbalance > 10.0

    def test_probe_subsample_for_large_inputs(self):
        data = gaussian_mixture(n=5000, d=5, n_clusters=5, seed=0).points
        diagnosis = diagnose_dataset(data, 5, probe_size=1000, seed=0)
        assert diagnosis.sample_size == 1000

    def test_imbalanced_mixture_detected(self, imbalanced_blobs):
        diagnosis = diagnose_dataset(imbalanced_blobs, 6, seed=0)
        assert diagnosis.cluster_imbalance > diagnose_dataset(
            gaussian_mixture(n=1500, d=8, n_clusters=6, gamma=0.0, seed=1).points, 6, seed=0
        ).cluster_imbalance * 0.5


class TestRecommendSampler:
    def test_balanced_data_allows_cheap_sampling(self):
        data = gaussian_mixture(n=4000, d=8, n_clusters=5, gamma=0.0, seed=0).points
        assert recommend_sampler(data, 5, seed=0) in ("uniform", "lightweight")

    def test_outlier_data_requires_fast_coreset(self):
        data = c_outlier_dataset(n=4000, d=8, n_outliers=4, seed=0).points
        assert recommend_sampler(data, 5, seed=0) == "fast_coreset"

    def test_tiny_cluster_relative_to_budget_requires_fast_coreset(self):
        # A cluster holding 0.05% of the points with a small coreset budget.
        data = np.concatenate(
            [np.random.default_rng(0).normal(size=(9995, 4)), 500.0 + np.zeros((5, 4))]
        )
        assert recommend_sampler(data, 4, coreset_size=100, seed=0) == "fast_coreset"

    def test_recommendation_is_deterministic_given_seed(self, blobs):
        assert recommend_sampler(blobs, 6, seed=3) == recommend_sampler(blobs, 6, seed=3)


class TestCli:
    @pytest.fixture
    def data_file(self, tmp_path, blobs):
        path = tmp_path / "data.npy"
        np.save(path, blobs)
        return str(path)

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compress_creates_archive(self, data_file, tmp_path, capsys):
        output = str(tmp_path / "coreset.npz")
        code = main(["compress", data_file, "--k", "6", "--m", "120", "--output", output, "--seed", "1"])
        assert code == 0
        archive = np.load(output)
        assert archive["points"].shape[0] == 120
        assert archive["weights"].shape == (120,)
        summary = json.loads(capsys.readouterr().out)
        assert summary["coreset_points"] == 120

    def test_compress_all_methods(self, data_file, tmp_path):
        for method in ("uniform", "lightweight", "welterweight", "sensitivity", "fast_coreset"):
            output = str(tmp_path / f"{method}.npz")
            code = main(
                ["compress", data_file, "--k", "5", "--m", "80", "--method", method, "--output", output]
            )
            assert code == 0

    def test_evaluate_good_coreset_exits_zero(self, data_file, tmp_path, capsys):
        output = str(tmp_path / "coreset.npz")
        main(["compress", data_file, "--k", "6", "--m", "200", "--output", output])
        capsys.readouterr()
        code = main(["evaluate", data_file, output, "--k", "6"])
        report = json.loads(capsys.readouterr().out)
        assert code == 0
        assert report["distortion"] < 5.0

    def test_recommend_outputs_json(self, data_file, capsys):
        code = main(["recommend", data_file, "--k", "6"])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["recommendation"] in ("uniform", "lightweight", "fast_coreset")

    def test_csv_input_supported(self, tmp_path, blobs, capsys):
        path = tmp_path / "data.csv"
        np.savetxt(path, blobs[:200], delimiter=",")
        output = str(tmp_path / "coreset.npz")
        code = main(["compress", str(path), "--k", "4", "--m", "50", "--output", output])
        assert code == 0

    def test_kmedian_flag(self, data_file, tmp_path):
        output = str(tmp_path / "coreset.npz")
        code = main(["compress", data_file, "--k", "5", "--m", "80", "--z", "1", "--output", output])
        assert code == 0


class TestCliParallel:
    @pytest.fixture
    def data_file(self, tmp_path, blobs):
        path = tmp_path / "data.npy"
        np.save(path, blobs)
        return str(path)

    def test_sharded_compress_reports_execution(self, data_file, tmp_path, capsys):
        output = str(tmp_path / "coreset.npz")
        code = main(
            ["compress", data_file, "--k", "5", "--m", "100", "--output", output,
             "--shards", "4", "--seed", "2"]
        )
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["shards"] == 4
        assert summary["backend"] == "serial"
        assert summary["coreset_points"] == 100
        assert summary["communication_floats"] > 0
        assert np.load(output)["points"].shape == (100, 8)

    def test_backend_changes_nothing_but_wallclock(self, data_file, tmp_path, capsys):
        # Fixed --shards + --seed must give byte-identical archives no
        # matter the backend or worker count.
        archives = []
        for backend, workers in (("serial", 1), ("thread", 3)):
            output = str(tmp_path / f"{backend}.npz")
            code = main(
                ["compress", data_file, "--k", "5", "--m", "100", "--output", output,
                 "--shards", "4", "--seed", "2", "--backend", backend,
                 "--workers", str(workers)]
            )
            assert code == 0
            capsys.readouterr()
            archives.append(np.load(output))
        assert np.array_equal(archives[0]["points"], archives[1]["points"])
        assert np.array_equal(archives[0]["weights"], archives[1]["weights"])

    @pytest.mark.parallel
    def test_process_backend_matches_serial(self, data_file, tmp_path, capsys):
        outputs = []
        for backend, workers in (("serial", 1), ("process", 2)):
            output = str(tmp_path / f"{backend}.npz")
            code = main(
                ["compress", data_file, "--k", "5", "--m", "100", "--output", output,
                 "--shards", "4", "--seed", "2", "--backend", backend,
                 "--workers", str(workers)]
            )
            assert code == 0
            summary = json.loads(capsys.readouterr().out)
            assert summary["backend"] == backend
            outputs.append(np.load(output))
        assert np.array_equal(outputs[0]["points"], outputs[1]["points"])
        assert np.array_equal(outputs[0]["weights"], outputs[1]["weights"])

    def test_workers_default_shard_count(self, data_file, tmp_path, capsys):
        output = str(tmp_path / "coreset.npz")
        code = main(
            ["compress", data_file, "--k", "5", "--m", "100", "--output", output,
             "--backend", "thread", "--workers", "2"]
        )
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["shards"] == 2  # defaults to --workers
        assert summary["backend"] == "thread"

    def test_backend_alone_keeps_the_plain_path(self, data_file, tmp_path, capsys):
        # shards defaults to 1 here, so only --shards/--seed may key the
        # result: a lone --backend flag must not change the bytes.
        archives = []
        for extra in ([], ["--backend", "thread"]):
            output = str(tmp_path / f"plain{len(extra)}.npz")
            code = main(
                ["compress", data_file, "--k", "5", "--m", "100", "--output", output,
                 "--seed", "2", *extra]
            )
            assert code == 0
            summary = json.loads(capsys.readouterr().out)
            assert summary["shards"] == 1
            assert summary["backend"] == "serial"
            archives.append(np.load(output))
        assert np.array_equal(archives[0]["points"], archives[1]["points"])
        assert np.array_equal(archives[0]["weights"], archives[1]["weights"])

    @pytest.mark.parallel
    def test_workers_alone_default_to_process_backend(self, data_file, tmp_path, capsys):
        output = str(tmp_path / "coreset.npz")
        code = main(
            ["compress", data_file, "--k", "5", "--m", "100", "--output", output,
             "--workers", "2"]
        )
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["backend"] == "process"
        assert summary["workers"] == 2
        assert summary["shards"] == 2

    def test_unknown_backend_rejected(self, data_file):
        with pytest.raises(SystemExit):
            main(["compress", data_file, "--k", "5", "--backend", "gpu"])

    def test_async_sharded_build_matches_sync(self, data_file, tmp_path, capsys):
        # --async reruns the identical spawn-keyed shard seeds through the
        # persistent-pool async executor: bytes must not move.
        archives = []
        for extra in ([], ["--async"]):
            output = str(tmp_path / f"async{len(extra)}.npz")
            code = main(
                ["compress", data_file, "--k", "5", "--m", "100", "--output", output,
                 "--shards", "4", "--seed", "2", "--backend", "thread",
                 "--workers", "2", *extra]
            )
            assert code == 0
            summary = json.loads(capsys.readouterr().out)
            assert summary["backend"] == ("async+thread" if extra else "thread")
            if extra:
                # The async build offloads the final re-compression.
                assert summary["reduces_offloaded"] == 1
                assert summary["pending_high_water"] >= 0
            archives.append(np.load(output))
        assert np.array_equal(archives[0]["points"], archives[1]["points"])
        assert np.array_equal(archives[0]["weights"], archives[1]["weights"])

    def test_async_without_shards_rejected(self, data_file, capsys):
        code = main(["compress", data_file, "--k", "5", "--async"])
        assert code == 2
        assert "--async requires" in capsys.readouterr().err

    def test_prefetch_rejects_conflicting_shards(self, data_file, capsys):
        code = main(
            ["compress", data_file, "--k", "5", "--prefetch-batches", "2",
             "--shards", "4"]
        )
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_prefetch_rejects_non_positive_depth(self, data_file, capsys):
        code = main(["compress", data_file, "--k", "5", "--prefetch-batches", "0"])
        assert code == 2
        assert "at least 1" in capsys.readouterr().err

    def test_prefetch_streaming_invariant_to_depth_and_backend(
        self, data_file, tmp_path, capsys
    ):
        # The overlapped streaming path is keyed by --seed and the block
        # structure; prefetch depth and backend change wall-clock only.
        archives = []
        for label, extra in (
            ("a", ["--prefetch-batches", "1", "--backend", "serial"]),
            ("b", ["--prefetch-batches", "4", "--backend", "thread", "--workers", "2"]),
        ):
            output = str(tmp_path / f"prefetch_{label}.npz")
            code = main(
                ["compress", data_file, "--k", "5", "--m", "100", "--output", output,
                 "--seed", "2", *extra]
            )
            assert code == 0
            summary = json.loads(capsys.readouterr().out)
            assert summary["mode"] == "streaming"
            assert summary["blocks"] == 16
            assert summary["backend"].startswith("async+")
            # Reduce diagnostics ride the summary; the offload split is
            # mode-dependent but reduces always run on the pool here.
            assert summary["reductions"] == 15
            assert summary["spread_refreshes"] >= 1
            assert summary["cost_bound_refreshes"] >= 0
            assert summary["reduces_offloaded"] == 15
            assert summary["pending_high_water"] > 0
            archives.append(np.load(output))
        assert np.array_equal(archives[0]["points"], archives[1]["points"])
        assert np.array_equal(archives[0]["weights"], archives[1]["weights"])

    def test_windowed_compress_reports_window_execution(self, data_file, tmp_path, capsys):
        output = str(tmp_path / "windowed.npz")
        code = main(
            ["compress", data_file, "--k", "5", "--m", "100", "--window", "4",
             "--blocks", "10", "--output", output, "--seed", "2"]
        )
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["mode"] == "windowed_streaming[sliding]"
        assert summary["method"].startswith("windowed_merge_reduce[sliding]")
        assert summary["window"] == 4
        assert summary["decay_half_life"] is None
        assert summary["blocks"] == 10
        # 10 blocks through a 4-block window retire the first 6.
        assert summary["blocks_expired"] == 6
        assert summary["drift_events"] == 0
        assert summary["backend"] == "serial"
        assert summary["shards"] == 1

    def test_decay_compress_with_prefetch_overlap(self, data_file, tmp_path, capsys):
        output = str(tmp_path / "decayed.npz")
        code = main(
            ["compress", data_file, "--k", "5", "--m", "100", "--decay", "3.0",
             "--prefetch-batches", "2", "--output", output, "--seed", "2"]
        )
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["mode"] == "windowed_streaming[decay]"
        assert summary["decay_half_life"] == 3.0
        assert summary["blocks_expired"] == 0
        assert summary["backend"].startswith("async+")
        # Decay fades old blocks: total weight well below the input size.
        assert summary["total_weight"] < summary["input_points"]

    def test_window_and_decay_mutually_exclusive(self, data_file, capsys):
        code = main(
            ["compress", data_file, "--k", "5", "--window", "4", "--decay", "2.0"]
        )
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_window_rejects_conflicting_shards(self, data_file, capsys):
        code = main(
            ["compress", data_file, "--k", "5", "--window", "4", "--shards", "3"]
        )
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_blocks_requires_a_streaming_path(self, data_file, capsys):
        code = main(["compress", data_file, "--k", "5", "--blocks", "8"])
        assert code == 2
        assert "--blocks only applies" in capsys.readouterr().err

    def test_drift_threshold_requires_a_window_policy(self, data_file, capsys):
        code = main(["compress", data_file, "--k", "5", "--drift-threshold", "0.3"])
        assert code == 2
        assert "requires a window policy" in capsys.readouterr().err

    def test_window_value_validated(self, data_file, capsys):
        assert main(["compress", data_file, "--k", "5", "--window", "0"]) == 2
        assert "at least one block" in capsys.readouterr().err
        assert main(["compress", data_file, "--k", "5", "--decay", "0"]) == 2
        assert "positive" in capsys.readouterr().err

"""Unit tests for repro.core.uniform."""

import numpy as np
import pytest

from repro.clustering.cost import clustering_cost
from repro.core.uniform import UniformSampling, uniform_sample


class TestUniformSampling:
    def test_sample_size_and_weights(self, blobs):
        coreset = UniformSampling(seed=0).sample(blobs, 100)
        assert coreset.size == 100
        # Every sampled point carries n / m weight.
        np.testing.assert_allclose(coreset.weights, blobs.shape[0] / 100)
        assert coreset.total_weight == pytest.approx(blobs.shape[0])

    def test_points_come_from_input(self, blobs):
        coreset = UniformSampling(seed=1).sample(blobs, 50)
        assert coreset.indices is not None
        np.testing.assert_allclose(coreset.points, blobs[coreset.indices])

    def test_without_replacement_unique_indices(self, blobs):
        coreset = UniformSampling(seed=2).sample(blobs, 200)
        assert len(set(coreset.indices.tolist())) == 200

    def test_with_replacement_allowed(self, blobs):
        coreset = UniformSampling(replace=True, seed=3).sample(blobs, 200)
        assert coreset.size == 200

    def test_cost_estimate_unbiased_on_average(self, blobs, rng):
        centers = blobs[rng.choice(blobs.shape[0], size=5, replace=False)]
        true_cost = clustering_cost(blobs, centers)
        estimates = [
            UniformSampling(seed=seed).sample(blobs, 300).cost(centers) for seed in range(20)
        ]
        assert np.mean(estimates) == pytest.approx(true_cost, rel=0.15)

    def test_weighted_input_changes_selection(self):
        points = np.concatenate([np.zeros((100, 2)), np.ones((100, 2)) * 5])
        weights = np.concatenate([np.full(100, 1e-9), np.full(100, 1.0)])
        coreset = UniformSampling(seed=0).sample(points, 50, weights=weights)
        # Essentially all selection mass is on the second half.
        assert (coreset.indices >= 100).mean() > 0.9
        assert coreset.total_weight == pytest.approx(weights.sum())

    def test_sample_larger_than_n_rejected(self, blobs):
        with pytest.raises(ValueError):
            UniformSampling(seed=0).sample(blobs, blobs.shape[0] + 1)

    def test_zero_weight_sum_rejected(self):
        with pytest.raises(ValueError):
            UniformSampling(seed=0).sample(np.ones((5, 2)), 2, weights=np.zeros(5))

    def test_functional_wrapper(self, blobs):
        coreset = uniform_sample(blobs, 80, seed=0)
        assert coreset.size == 80
        assert coreset.method == "uniform"

    def test_reproducibility(self, blobs):
        a = UniformSampling(seed=9).sample(blobs, 40)
        b = UniformSampling(seed=9).sample(blobs, 40)
        np.testing.assert_array_equal(a.indices, b.indices)

    def test_per_call_seed_overrides_constructor(self, blobs):
        sampler = UniformSampling(seed=1)
        a = sampler.sample(blobs, 40, seed=123)
        b = sampler.sample(blobs, 40, seed=123)
        c = sampler.sample(blobs, 40, seed=456)
        np.testing.assert_array_equal(a.indices, b.indices)
        assert not np.array_equal(a.indices, c.indices)

    def test_misses_rare_outliers_often(self, outlier_data):
        # The paper's core point: with 12 outliers in 2000 points, a sample of
        # 60 misses the outlier cluster entirely in a sizeable fraction of runs.
        misses = 0
        for seed in range(30):
            coreset = UniformSampling(seed=seed).sample(outlier_data, 60)
            selected = outlier_data[coreset.indices]
            if not (selected[:, 0] > 250.0).any():
                misses += 1
        assert misses >= 5

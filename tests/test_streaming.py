"""Unit tests for repro.streaming (stream, merge-&-reduce, BICO, StreamKM++)."""

import numpy as np
import pytest

from repro.core import SensitivitySampling, UniformSampling
from repro.evaluation import coreset_distortion
from repro.streaming import (
    BicoCoreset,
    ClusteringFeature,
    DataStream,
    MergeReduceTree,
    StreamKMPlusPlus,
    StreamingCoresetPipeline,
    block_size_plan,
    iterate_blocks,
)
from repro.streaming.merge_reduce import level_pattern, stream_dataset


class TestDataStream:
    def test_blocks_cover_all_points(self, blobs):
        stream = DataStream(points=blobs, block_size=100)
        total = sum(block.shape[0] for block, _ in stream)
        assert total == blobs.shape[0]

    def test_block_size_respected(self, blobs):
        for block, _ in DataStream(points=blobs, block_size=64):
            assert block.shape[0] <= 64

    def test_n_blocks_property(self, blobs):
        stream = DataStream(points=blobs, block_size=100)
        assert stream.n_blocks == int(np.ceil(blobs.shape[0] / 100))
        assert stream.dimension == blobs.shape[1]

    def test_with_block_count(self, blobs):
        stream = DataStream.with_block_count(blobs, 7)
        assert len(list(stream)) == 7

    def test_weights_carried_through(self, blobs, rng):
        weights = rng.uniform(1, 2, size=blobs.shape[0])
        stream = DataStream(points=blobs, block_size=200, weights=weights)
        total_weight = sum(block_weights.sum() for _, block_weights in stream)
        assert total_weight == pytest.approx(weights.sum())

    def test_shuffle_changes_order_not_content(self, blobs):
        plain = np.concatenate([b for b, _ in iterate_blocks(blobs, 100)])
        shuffled = np.concatenate([b for b, _ in iterate_blocks(blobs, 100, shuffle=True, seed=0)])
        assert not np.allclose(plain, shuffled)
        np.testing.assert_allclose(np.sort(plain, axis=0), np.sort(shuffled, axis=0))

    def test_replayable(self, blobs):
        stream = DataStream(points=blobs, block_size=300)
        assert len(list(stream)) == len(list(stream))


class TestBlockCountContract:
    """Regression: ``with_block_count`` must emit exactly what it promises.

    The old ``ceil``-sized uniform split could emit fewer blocks (6 points
    over 4 blocks gave 3 blocks of 2); the remainder is now spread over the
    leading blocks instead.
    """

    @pytest.mark.parametrize("n", [1, 2, 5, 6, 7, 23, 100, 1500])
    @pytest.mark.parametrize("n_blocks", [1, 2, 3, 4, 7, 10])
    def test_exact_block_count_over_lattice(self, rng, n, n_blocks):
        points = rng.normal(size=(n, 3))
        stream = DataStream.with_block_count(points, n_blocks)
        blocks = list(stream)
        assert len(blocks) == min(n, n_blocks)
        assert stream.n_blocks == len(blocks)
        sizes = [block.shape[0] for block, _ in blocks]
        assert sum(sizes) == n
        assert max(sizes) - min(sizes) <= 1
        np.testing.assert_array_equal(
            np.concatenate([block for block, _ in blocks]), points
        )

    def test_plan_spreads_remainder_over_leading_blocks(self):
        assert block_size_plan(6, 4) == (2, 2, 1, 1)
        assert block_size_plan(10, 3) == (4, 3, 3)
        assert block_size_plan(8, 4) == (2, 2, 2, 2)
        assert block_size_plan(3, 5) == (1, 1, 1)

    def test_weights_follow_the_plan(self, blobs, rng):
        weights = rng.uniform(1, 2, size=blobs.shape[0])
        stream = DataStream.with_block_count(blobs, 7, weights=weights)
        covered = np.concatenate([block_weights for _, block_weights in stream])
        np.testing.assert_array_equal(covered, weights)


class TestStreamMemoryContracts:
    """Regression: unshuffled blocks are views; unit weights stay lazy."""

    def test_unshuffled_blocks_are_contiguous_views(self, blobs):
        for block, _ in iterate_blocks(blobs, 100):
            assert np.shares_memory(block, blobs)
            assert block.flags.c_contiguous
        for block, _ in DataStream.with_block_count(blobs, 7):
            assert np.shares_memory(block, blobs)

    def test_shuffled_blocks_are_copies(self, blobs):
        for block, _ in iterate_blocks(blobs, 100, shuffle=True, seed=0):
            assert not np.shares_memory(block, blobs)

    def test_unit_weight_default_is_lazy(self, blobs):
        stream = DataStream(points=blobs, block_size=200)
        # No full-stream np.ones(n) may ever be materialised ...
        assert stream.weights is None
        # ... yet every block still carries its own unit-weight vector.
        for block, block_weights in stream:
            assert block_weights.shape == (block.shape[0],)
            np.testing.assert_array_equal(block_weights, 1.0)

    def test_with_block_count_does_not_scan_memmaps(self, tmp_path, blobs):
        # Routing through _check_stream_points: a construction-time
        # finiteness scan would page in the whole file.
        corrupted = blobs.copy()
        corrupted[123, 1] = np.nan
        path = tmp_path / "nan_counted.npy"
        np.save(path, corrupted)
        mapped = np.load(str(path), mmap_mode="r")
        stream = DataStream.with_block_count(mapped, 5)  # must not raise
        assert stream.n_blocks == 5
        assert any(np.isnan(block).any() for block, _ in stream)


class TestDataStreamFromNpy:
    @pytest.fixture
    def npy_file(self, tmp_path, blobs):
        path = tmp_path / "dataset.npy"
        np.save(path, blobs)
        return str(path)

    def test_blocks_match_in_memory_stream(self, npy_file, blobs):
        disk = list(DataStream.from_npy(npy_file, block_size=200))
        memory = list(DataStream(points=blobs, block_size=200))
        assert len(disk) == len(memory)
        for (disk_points, disk_weights), (mem_points, mem_weights) in zip(disk, memory):
            assert np.array_equal(disk_points, mem_points)
            assert np.array_equal(disk_weights, mem_weights)

    def test_backing_array_is_memory_mapped_not_a_copy(self, npy_file):
        stream = DataStream.from_npy(npy_file, block_size=200)
        # The stream must hold a view into the mmap, never a materialised
        # copy — that is the "never hold the full dataset" contract.
        assert not stream.points.flags.owndata
        base = stream.points
        while not isinstance(base, np.memmap) and base.base is not None:
            base = base.base
        assert isinstance(base, np.memmap)

    def test_weights_shuffle_and_properties(self, npy_file, blobs, rng):
        weights = rng.uniform(1, 2, size=blobs.shape[0])
        stream = DataStream.from_npy(
            npy_file, block_size=300, weights=weights, shuffle=True, seed=4
        )
        assert stream.n_points == blobs.shape[0]
        assert stream.dimension == blobs.shape[1]
        total = sum(block_weights.sum() for _, block_weights in stream)
        assert total == pytest.approx(weights.sum())

    def test_construction_defers_finiteness_to_consumption(self, tmp_path, blobs):
        # A construction-time NaN scan would read (and temporarily allocate
        # 1/8th of) the whole file, defeating mmap; the contract is that the
        # bad value surfaces when its block reaches a validating consumer.
        corrupted = blobs.copy()
        corrupted[700, 2] = np.nan
        path = tmp_path / "nan.npy"
        np.save(path, corrupted)
        stream = DataStream.from_npy(str(path), block_size=200)  # must not raise
        blocks = list(stream)
        assert any(np.isnan(points).any() for points, _ in blocks)
        pipeline = StreamingCoresetPipeline(
            sampler=UniformSampling(seed=0), coreset_size=60, seed=0
        )
        with pytest.raises(ValueError, match="NaN"):
            pipeline.run(stream)

    def test_non_float64_file_rejected(self, tmp_path, blobs):
        path = tmp_path / "f32.npy"
        np.save(path, blobs.astype(np.float32))
        with pytest.raises(ValueError, match="float64"):
            DataStream.from_npy(str(path), block_size=100)

    def test_non_2d_file_rejected(self, tmp_path):
        path = tmp_path / "flat.npy"
        np.save(path, np.arange(10.0))
        with pytest.raises(ValueError, match="2-dimensional"):
            DataStream.from_npy(str(path), block_size=5)

    def test_feeds_the_streaming_pipeline(self, npy_file, blobs):
        pipeline = StreamingCoresetPipeline(
            sampler=UniformSampling(seed=0), coreset_size=60, seed=0
        )
        from_disk = pipeline.run(DataStream.from_npy(npy_file, block_size=250))
        in_memory = pipeline.run(DataStream(points=blobs, block_size=250))
        assert np.array_equal(from_disk.points, in_memory.points)
        assert np.array_equal(from_disk.weights, in_memory.weights)


class TestMergeReduce:
    def test_final_coreset_size_bounded(self, blobs):
        pipeline = StreamingCoresetPipeline(sampler=UniformSampling(seed=0), coreset_size=120, seed=0)
        coreset = pipeline.run(DataStream(points=blobs, block_size=200))
        assert coreset.size <= 120

    def test_total_weight_preserved_approximately(self, blobs):
        pipeline = StreamingCoresetPipeline(
            sampler=SensitivitySampling(k=5, seed=0), coreset_size=150, seed=0
        )
        coreset = pipeline.run(DataStream(points=blobs, block_size=250))
        assert coreset.total_weight == pytest.approx(blobs.shape[0], rel=0.35)

    def test_streaming_distortion_reasonable(self, blobs):
        coreset = stream_dataset(
            blobs, SensitivitySampling(k=6, seed=0), coreset_size=300, n_blocks=8, seed=0
        )
        assert coreset_distortion(blobs, coreset, k=6, seed=1) < 2.0

    def test_method_records_sampler(self, blobs):
        coreset = stream_dataset(blobs, UniformSampling(seed=0), coreset_size=100, n_blocks=4, seed=0)
        assert coreset.method == "merge_reduce[uniform]"

    def test_tree_reduction_count_grows_with_blocks(self, blobs):
        tree = MergeReduceTree(sampler=UniformSampling(seed=0), coreset_size=60, seed=0)
        for block, weights in DataStream(points=blobs, block_size=100):
            tree.add_block(block, weights)
        tree.finalize()
        assert tree.blocks_seen == int(np.ceil(blobs.shape[0] / 100))
        assert tree.reductions >= tree.blocks_seen // 2

    def test_finalize_without_blocks_raises(self):
        tree = MergeReduceTree(sampler=UniformSampling(seed=0), coreset_size=10, seed=0)
        with pytest.raises(ValueError):
            tree.finalize()

    def test_run_with_statistics(self, blobs):
        pipeline = StreamingCoresetPipeline(sampler=UniformSampling(seed=0), coreset_size=80, seed=0)
        coreset, statistics = pipeline.run_with_statistics(DataStream(points=blobs, block_size=300))
        assert statistics["blocks"] == pytest.approx(np.ceil(blobs.shape[0] / 300))
        assert statistics["coreset_size"] == coreset.size

    def test_level_pattern_binary_counter_invariant(self):
        # For 7 blocks the surviving groups cover 7 = 1 + 2 + 4 blocks (one
        # group per set bit); 8 blocks collapse into a single group.
        groups = level_pattern(7)
        assert sorted(len(g) for g in groups) == [1, 2, 4]
        assert sorted(sum(groups, [])) == list(range(1, 8))
        assert [len(g) for g in level_pattern(8)] == [8]

    def test_level_pattern_partitions_blocks(self):
        for n_blocks in (1, 3, 5, 13):
            groups = level_pattern(n_blocks)
            assert sorted(sum(groups, [])) == list(range(1, n_blocks + 1))


class TestClusteringFeature:
    def test_from_point_and_centroid(self):
        feature = ClusteringFeature.from_point(np.array([2.0, 4.0]), 3.0)
        np.testing.assert_allclose(feature.centroid, [2.0, 4.0])
        assert feature.weight == 3.0
        assert feature.internal_cost == pytest.approx(0.0)

    def test_absorb_updates_statistics(self):
        feature = ClusteringFeature.from_point(np.array([0.0, 0.0]), 1.0)
        feature.absorb(np.array([2.0, 0.0]), 1.0)
        np.testing.assert_allclose(feature.centroid, [1.0, 0.0])
        # SSE of two unit-weight points around their mean is 1 + 1 = 2.
        assert feature.internal_cost == pytest.approx(2.0)

    def test_merge_cost_formula(self):
        feature = ClusteringFeature.from_point(np.array([0.0]), 1.0)
        # delta = w * W / (w + W) * ||p - c||^2 = 1 * 1 / 2 * 4 = 2.
        assert feature.merge_cost(np.array([2.0]), 1.0) == pytest.approx(2.0)


class TestBico:
    def test_respects_coreset_size(self, blobs):
        coreset = BicoCoreset(coreset_size=100, seed=0).sample(blobs, 100)
        assert coreset.size <= 100

    def test_total_weight_exact(self, blobs):
        coreset = BicoCoreset(coreset_size=100, seed=0).sample(blobs, 100)
        assert coreset.total_weight == pytest.approx(blobs.shape[0])

    def test_streaming_interface(self, blobs):
        bico = BicoCoreset(coreset_size=150, seed=0)
        for block, weights in DataStream(points=blobs, block_size=250):
            bico.insert_block(block, weights)
        coreset = bico.to_coreset()
        assert coreset.size <= 150
        assert coreset.total_weight == pytest.approx(blobs.shape[0])

    def test_to_coreset_without_points_raises(self):
        with pytest.raises(ValueError):
            BicoCoreset(coreset_size=10).to_coreset()

    def test_reset_clears_state(self, blobs):
        bico = BicoCoreset(coreset_size=50, seed=0)
        bico.insert_block(blobs[:100])
        bico.reset()
        assert bico.points_seen == 0
        with pytest.raises(ValueError):
            bico.to_coreset()

    def test_quantisation_quality_reasonable(self, blobs):
        # BICO is a decent quantiser even if its coreset distortion is weak.
        coreset = BicoCoreset(coreset_size=200, seed=0).sample(blobs, 200)
        distortion = coreset_distortion(blobs, coreset, k=6, seed=1)
        assert distortion < 10.0


class TestStreamKM:
    def test_respects_coreset_size(self, blobs):
        coreset = StreamKMPlusPlus(coreset_size=150, seed=0).sample(blobs, 150)
        assert coreset.size <= 150

    def test_total_weight_exact(self, blobs):
        coreset = StreamKMPlusPlus(coreset_size=150, seed=0).sample(blobs, 150)
        assert coreset.total_weight == pytest.approx(blobs.shape[0])

    def test_streaming_interface(self, blobs):
        streamkm = StreamKMPlusPlus(coreset_size=120, seed=0)
        for block, weights in DataStream(points=blobs, block_size=300):
            streamkm.insert_block(block, weights)
        coreset = streamkm.to_coreset()
        assert coreset.size <= 120
        assert coreset.total_weight == pytest.approx(blobs.shape[0])

    def test_to_coreset_without_points_raises(self):
        with pytest.raises(ValueError):
            StreamKMPlusPlus(coreset_size=10).to_coreset()

    def test_reset(self, blobs):
        streamkm = StreamKMPlusPlus(coreset_size=50, seed=0)
        streamkm.insert_block(blobs[:200])
        streamkm.reset()
        with pytest.raises(ValueError):
            streamkm.to_coreset()

    def test_distortion_reasonable_on_easy_data(self, blobs):
        coreset = StreamKMPlusPlus(coreset_size=300, seed=0).sample(blobs, 300)
        assert coreset_distortion(blobs, coreset, k=6, seed=1) < 3.0

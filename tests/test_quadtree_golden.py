"""Golden equivalence tests: CSR quadtree vs the frozen seed implementation.

The optimized :class:`repro.geometry.quadtree.QuadtreeEmbedding` (CSR cell
storage, incremental lattice, precomputed distance table) must be
*observationally identical* to the seed revision under a fixed seed: same
depth, same compact ``cell_of`` labels, same ``points_in_cell`` membership
(including order), and bit-identical tree distances.  The seed behaviour is
pinned by the frozen snapshot in :mod:`repro.reference.seed_hotpath`.
"""

import numpy as np
import pytest

from repro.geometry.quadtree import QuadtreeEmbedding
from repro.native import use_native
from repro.reference.seed_hotpath import SeedQuadtreeEmbedding


def _dataset(case: str, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    if case == "gaussian":
        return rng.normal(size=(500, 6)) * 10.0
    if case == "high_spread":
        near = rng.normal(size=(200, 3))
        far = rng.normal(size=(200, 3)) * 1e5 + 1e6
        return np.concatenate([near, far])
    if case == "duplicates":
        base = rng.normal(size=(60, 4))
        return np.concatenate([base, base[:30], np.zeros((10, 4))])
    if case == "low_dim":
        return rng.uniform(-3.0, 3.0, size=(400, 1))
    raise AssertionError(case)


CASES = [
    ("gaussian", 0),
    ("gaussian", 7),
    ("high_spread", 1),
    ("duplicates", 2),
    ("low_dim", 3),
]


# Run every golden comparison with the compiled kernel tier enabled AND
# forced to the pure-numpy fallbacks: both dispatch modes of the grouping
# kernel must stay bit-identical to the frozen seed.
@pytest.fixture(scope="module", params=[True, False], ids=["native", "fallback"])
def kernel_tier(request):
    with use_native(request.param):
        yield request.param


@pytest.fixture(scope="module", params=CASES, ids=[f"{c}-{s}" for c, s in CASES])
def pair(request, kernel_tier):
    case, seed = request.param
    points = _dataset(case, seed)
    optimized = QuadtreeEmbedding(seed=seed).fit(points)
    reference = SeedQuadtreeEmbedding(seed=seed).fit(points)
    return points, optimized, reference


class TestGoldenEquivalence:
    def test_identical_depth_and_geometry(self, pair):
        _, optimized, reference = pair
        assert optimized.depth == reference.depth
        assert optimized.delta_ == reference.delta_
        np.testing.assert_array_equal(optimized.shift_, reference.shift_)

    def test_identical_cell_of_labels(self, pair):
        _, optimized, reference = pair
        for level in range(reference.depth):
            np.testing.assert_array_equal(
                optimized.level_cell_ids_[level], reference.level_cell_ids_[level]
            )

    def test_identical_occupied_cell_counts(self, pair):
        _, optimized, reference = pair
        for level in range(reference.depth):
            assert optimized.occupied_cells(level) == reference.occupied_cells(level)

    def test_identical_points_in_cell_membership(self, pair):
        _, optimized, reference = pair
        for level in range(reference.depth):
            for cell_id in range(reference.occupied_cells(level)):
                np.testing.assert_array_equal(
                    optimized.points_in_cell(level, cell_id),
                    reference.points_in_cell(level, cell_id),
                )
            # Unused identifiers report empty membership on both sides.
            assert optimized.points_in_cell(level, 10**9).size == 0
            assert reference.points_in_cell(level, 10**9).size == 0

    def test_identical_tree_distances(self, pair):
        points, optimized, reference = pair
        n = points.shape[0]
        rng = np.random.default_rng(99)
        pairs = rng.integers(0, n, size=(400, 2))
        for i, j in pairs:
            i, j = int(i), int(j)
            assert optimized.deepest_shared_level(i, j) == reference.deepest_shared_level(i, j)
            # Bit-identical, not approximately equal: the distance table is
            # accumulated in the seed's summation order.
            assert optimized.tree_distance(i, j) == reference.tree_distance(i, j)

    def test_distance_table_matches_seed_sums(self, pair):
        _, optimized, reference = pair
        for level in range(-1, reference.depth):
            assert optimized.distance_from_shared_level(level) == reference.distance_from_shared_level(level)


class TestLemma22Invariant:
    """Property test: tree distances dominate Euclidean distances (Lemma 2.2)."""

    @pytest.mark.parametrize("seed", range(5))
    def test_tree_distance_dominates_euclidean(self, seed):
        rng = np.random.default_rng(seed)
        points = rng.normal(size=(300, 5)) * rng.uniform(0.1, 100.0)
        tree = QuadtreeEmbedding(seed=seed).fit(points)
        pairs = rng.integers(0, points.shape[0], size=(300, 2))
        for i, j in pairs:
            if i == j:
                continue
            euclidean = float(np.linalg.norm(points[i] - points[j]))
            assert tree.tree_distance(int(i), int(j)) >= euclidean - 1e-9 * max(1.0, euclidean)

    def test_holds_with_precomputed_spread(self):
        # The shared-spread path skips the per-tree estimate but must keep
        # the metric dominance intact.
        rng = np.random.default_rng(11)
        points = rng.normal(size=(250, 4)) * 50.0
        from repro.geometry.quadtree import compute_spread

        spread = compute_spread(points, seed=0)
        tree = QuadtreeEmbedding(seed=1, spread=spread).fit(points)
        for _ in range(200):
            i, j = rng.integers(0, points.shape[0], size=2)
            if i == j:
                continue
            euclidean = float(np.linalg.norm(points[i] - points[j]))
            assert tree.tree_distance(int(i), int(j)) >= euclidean - 1e-9 * max(1.0, euclidean)


class TestSharedSpreadStructure:
    def test_precomputed_spread_matches_unshared_partitions(self):
        # Passing the same spread value the fit would have computed produces
        # the same depth cap; only the generator stream differs (the shift is
        # drawn first, so with an identical scalar shift the cells coincide).
        rng = np.random.default_rng(4)
        points = rng.normal(size=(300, 3)) * 10.0
        baseline = QuadtreeEmbedding(seed=5).fit(points)
        from repro.geometry.quadtree import compute_spread

        generator = np.random.default_rng(5)
        generator.uniform(0.0, baseline.delta_)  # replay the shift draw
        spread = compute_spread(points, seed=generator)
        shared = QuadtreeEmbedding(seed=5, spread=spread).fit(points)
        assert shared.depth == baseline.depth
        for level in range(baseline.depth):
            np.testing.assert_array_equal(
                shared.level_cell_ids_[level], baseline.level_cell_ids_[level]
            )

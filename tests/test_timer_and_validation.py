"""Unit tests for repro.utils.timer and repro.utils.validation."""

import time

import numpy as np
import pytest

from repro.utils.timer import StopwatchRecorder, Timer, timed
from repro.utils.validation import (
    check_array,
    check_integer,
    check_points,
    check_positive,
    check_power,
    check_probability,
    check_sample_size,
    check_weights,
)


class TestTimer:
    def test_context_manager_measures_time(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.009

    def test_start_stop(self):
        timer = Timer()
        timer.start()
        time.sleep(0.005)
        elapsed = timer.stop()
        assert elapsed >= 0.004
        assert timer.elapsed == elapsed

    def test_timed_returns_result_and_seconds(self):
        result, seconds = timed(sum, range(100))
        assert result == 4950
        assert seconds >= 0.0

    def test_stopwatch_recorder_summary(self):
        recorder = StopwatchRecorder()
        recorder.record("a", 1.0)
        recorder.record("a", 3.0)
        recorder.record("b", 2.0)
        summary = recorder.summary()
        assert summary["a"][0] == pytest.approx(2.0)
        assert summary["a"][1] == pytest.approx(1.0)
        assert summary["b"] == (2.0, 0.0)


class TestCheckArray:
    def test_converts_lists(self):
        array = check_array([[1, 2], [3, 4]])
        assert array.dtype == np.float64
        assert array.shape == (2, 2)

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValueError, match="2-dimensional"):
            check_array([1.0, 2.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            check_array(np.empty((0, 3)))

    def test_allows_empty_when_requested(self):
        array = check_array(np.empty((0, 3)), allow_empty=True)
        assert array.shape == (0, 3)

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            check_array([[np.nan, 1.0]])

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            check_array([[np.inf, 1.0]])

    def test_check_points_alias(self):
        points = check_points([[0.0, 1.0]])
        assert points.shape == (1, 2)


class TestCheckWeights:
    def test_none_gives_unit_weights(self):
        weights = check_weights(None, 4)
        np.testing.assert_array_equal(weights, np.ones(4))

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError, match="length"):
            check_weights(np.ones(3), 4)

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            check_weights(np.array([1.0, -1.0]), 2)

    def test_rejects_two_dimensional(self):
        with pytest.raises(ValueError):
            check_weights(np.ones((2, 2)), 2)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_weights(np.array([np.nan, 1.0]), 2)


class TestScalarChecks:
    def test_check_integer_accepts_numpy_int(self):
        assert check_integer(np.int64(5), name="k") == 5

    def test_check_integer_rejects_float(self):
        with pytest.raises(TypeError):
            check_integer(5.0, name="k")

    def test_check_integer_respects_minimum(self):
        with pytest.raises(ValueError):
            check_integer(0, name="k")

    def test_check_positive(self):
        assert check_positive(0.5, name="eps") == 0.5
        with pytest.raises(ValueError):
            check_positive(0.0, name="eps")
        with pytest.raises(ValueError):
            check_positive(float("nan"), name="eps")

    def test_check_probability(self):
        assert check_probability(0.0, name="p") == 0.0
        assert check_probability(1.0, name="p") == 1.0
        with pytest.raises(ValueError):
            check_probability(1.5, name="p")

    def test_check_power(self):
        assert check_power(1) == 1
        assert check_power(2) == 2
        with pytest.raises(ValueError):
            check_power(3)

    def test_check_sample_size(self):
        assert check_sample_size(5, 10) == 5
        with pytest.raises(ValueError):
            check_sample_size(11, 10)
        with pytest.raises(ValueError):
            check_sample_size(0, 10)

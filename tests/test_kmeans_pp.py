"""Unit tests for repro.clustering.kmeans_pp."""

import numpy as np
import pytest

from repro.clustering.cost import clustering_cost
from repro.clustering.kmeans_pp import bicriteria_kmeans_pp, dsquared_sample, kmeans_plus_plus


class TestKMeansPlusPlus:
    def test_returns_k_centers_from_input(self, blobs):
        solution = kmeans_plus_plus(blobs, 6, seed=0)
        assert solution.centers.shape == (6, blobs.shape[1])
        # Every center is an input point.
        for center in solution.centers:
            assert np.any(np.all(np.isclose(blobs, center), axis=1))

    def test_assignment_covers_all_points(self, blobs):
        solution = kmeans_plus_plus(blobs, 5, seed=0)
        assert solution.assignment.shape == (blobs.shape[0],)
        assert set(np.unique(solution.assignment)).issubset(set(range(5)))

    def test_cost_matches_clustering_cost(self, blobs):
        solution = kmeans_plus_plus(blobs, 4, seed=1)
        assert solution.cost == pytest.approx(clustering_cost(blobs, solution.centers), rel=1e-9)

    def test_seeding_beats_random_centers(self, blobs, rng):
        seeded = kmeans_plus_plus(blobs, 6, seed=2)
        random_centers = blobs[rng.choice(blobs.shape[0], size=6, replace=False)]
        # Averaged over the fixture this holds robustly: D^2 seeding spreads
        # centers over the clusters while random picks often double up.
        assert seeded.cost <= clustering_cost(blobs, random_centers) * 1.5

    def test_k_at_least_n_returns_all_points(self):
        points = np.arange(10, dtype=float).reshape(5, 2)
        solution = kmeans_plus_plus(points, 7, seed=0)
        assert solution.centers.shape == (5, 2)
        assert solution.cost == pytest.approx(0.0)

    def test_reproducible_with_same_seed(self, blobs):
        a = kmeans_plus_plus(blobs, 5, seed=42)
        b = kmeans_plus_plus(blobs, 5, seed=42)
        np.testing.assert_allclose(a.centers, b.centers)

    def test_weighted_selection_prefers_heavy_points(self):
        # Two locations far apart; one carries almost all of the weight.
        points = np.concatenate([np.zeros((50, 2)), np.ones((50, 2)) * 100])
        weights = np.concatenate([np.full(50, 1e-6), np.full(50, 1.0)])
        solution = kmeans_plus_plus(points, 1, weights=weights, seed=0)
        assert solution.centers[0, 0] == pytest.approx(100.0, abs=1.0)

    def test_kmedian_mode(self, blobs):
        solution = kmeans_plus_plus(blobs, 4, z=1, seed=0)
        assert solution.z == 1
        assert solution.cost == pytest.approx(clustering_cost(blobs, solution.centers, z=1), rel=1e-9)

    def test_duplicate_points_handled(self):
        points = np.zeros((30, 3))
        solution = kmeans_plus_plus(points, 3, seed=0)
        assert solution.centers.shape == (3, 3)
        assert solution.cost == pytest.approx(0.0)


class TestBicriteria:
    def test_oversamples_centers(self, blobs):
        solution = bicriteria_kmeans_pp(blobs, 5, beta=3.0, seed=0)
        assert solution.centers.shape[0] == 15

    def test_beta_below_one_raises(self, blobs):
        with pytest.raises(ValueError):
            bicriteria_kmeans_pp(blobs, 5, beta=0.5)

    def test_more_centers_never_hurt_much(self, blobs):
        base = kmeans_plus_plus(blobs, 5, seed=0)
        oversampled = bicriteria_kmeans_pp(blobs, 5, beta=2.0, seed=0)
        assert oversampled.cost <= base.cost + 1e-9


class TestDSquaredSample:
    def test_sample_size(self, blobs):
        centers = blobs[:3]
        indices, mass = dsquared_sample(blobs, centers, 20, seed=0)
        assert indices.shape == (20,)
        assert mass.shape == (blobs.shape[0],)

    def test_points_at_centers_never_sampled(self):
        points = np.concatenate([np.zeros((100, 2)), np.ones((5, 2)) * 10])
        centers = np.zeros((1, 2))
        indices, _ = dsquared_sample(points, centers, 50, seed=0)
        # All the D^2 mass sits on the far-away points.
        assert (indices >= 100).all()

    def test_degenerate_all_zero_mass(self):
        points = np.zeros((10, 2))
        indices, _ = dsquared_sample(points, np.zeros((1, 2)), 5, seed=0)
        assert indices.shape == (5,)

"""Unit tests for repro.geometry.quadtree."""

import numpy as np
import pytest

from repro.geometry.quadtree import QuadtreeEmbedding, compute_spread


class TestComputeSpread:
    def test_two_points(self):
        points = np.array([[0.0, 0.0], [3.0, 4.0]])
        assert compute_spread(points) == pytest.approx(1.0)

    def test_known_ratio(self):
        points = np.array([[0.0], [1.0], [100.0]])
        # max distance 100, min non-zero distance 1.
        assert compute_spread(points) == pytest.approx(100.0, rel=0.01)

    def test_single_point(self):
        assert compute_spread(np.zeros((1, 3))) == 1.0

    def test_identical_points(self):
        assert compute_spread(np.ones((10, 2))) == 1.0

    def test_sampled_estimate_close_to_exact(self, rng):
        points = rng.normal(size=(3000, 3))
        exact = compute_spread(points[:1500], sample_size=1500, seed=0)
        estimated = compute_spread(points[:1500], sample_size=400, seed=0)
        # The estimate may differ (min distance on a subsample is larger) but
        # must stay within a couple of orders of magnitude for log-use.
        assert np.log10(estimated) == pytest.approx(np.log10(exact), abs=1.5)


class TestQuadtreeEmbedding:
    @pytest.fixture(scope="class")
    def fitted(self):
        rng = np.random.default_rng(0)
        points = rng.normal(size=(300, 4)) * 10
        tree = QuadtreeEmbedding(seed=0).fit(points)
        return points, tree

    def test_every_point_assigned_at_every_level(self, fitted):
        points, tree = fitted
        for level in range(tree.depth):
            assert tree.level_cell_ids_[level].shape[0] == points.shape[0]

    def test_cell_counts_non_decreasing_with_depth(self, fitted):
        _, tree = fitted
        counts = [tree.occupied_cells(level) for level in range(tree.depth)]
        assert counts == sorted(counts)

    def test_root_level_has_few_cells(self, fitted):
        _, tree = fitted
        # Level 0 cells have side 2 * delta, so at most 2^d cells are occupied;
        # in practice the count is tiny.
        assert tree.occupied_cells(0) <= 2 ** tree.dimension_

    def test_cell_side_halves_per_level(self, fitted):
        _, tree = fitted
        assert tree.cell_side(3) == pytest.approx(tree.cell_side(2) / 2)

    def test_tree_distance_dominates_euclidean(self, fitted):
        # Lemma 2.2 lower bound: ||p - q|| <= d_T(p, q).
        points, tree = fitted
        rng = np.random.default_rng(1)
        for _ in range(200):
            i, j = rng.integers(0, points.shape[0], size=2)
            if i == j:
                continue
            euclidean = np.linalg.norm(points[i] - points[j])
            assert tree.tree_distance(int(i), int(j)) >= euclidean - 1e-6

    def test_tree_distance_symmetric_and_zero_on_diagonal(self, fitted):
        _, tree = fitted
        assert tree.tree_distance(5, 5) == 0.0
        assert tree.tree_distance(3, 7) == pytest.approx(tree.tree_distance(7, 3))

    def test_points_in_cell_lookup(self, fitted):
        points, tree = fitted
        level = min(2, tree.depth - 1)
        cell = tree.cell_of(0, level)
        members = tree.points_in_cell(level, cell)
        assert 0 in members.tolist()

    def test_unknown_cell_returns_empty(self, fitted):
        _, tree = fitted
        assert tree.points_in_cell(0, 10**9).size == 0

    def test_identical_points_single_cell(self):
        points = np.ones((20, 3))
        tree = QuadtreeEmbedding(seed=0).fit(points)
        assert tree.occupied_cells(0) == 1
        assert tree.tree_distance(0, 5) == 0.0

    def test_max_levels_cap_respected(self):
        rng = np.random.default_rng(2)
        points = np.concatenate([rng.normal(size=(50, 2)), rng.normal(size=(50, 2)) * 1e6])
        tree = QuadtreeEmbedding(max_levels=5, seed=0).fit(points)
        assert tree.depth <= 6

    def test_deepest_shared_level_refines_for_close_points(self):
        points = np.array([[0.0, 0.0], [0.001, 0.001], [50.0, 50.0]])
        tree = QuadtreeEmbedding(seed=3).fit(points)
        close = tree.deepest_shared_level(0, 1)
        far = tree.deepest_shared_level(0, 2)
        assert close >= far

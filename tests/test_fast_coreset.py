"""Unit tests for repro.core.fast_coreset (Algorithm 1)."""

import numpy as np
import pytest

from repro.clustering.cost import clustering_cost
from repro.core.fast_coreset import FastCoreset, fast_coreset
from repro.evaluation import coreset_distortion


class TestFastCoreset:
    def test_size_method_and_metadata(self, blobs):
        coreset = FastCoreset(k=6, seed=0).sample(blobs, 200)
        assert coreset.size == 200
        assert coreset.method == "fast_coreset"
        assert coreset.metadata["k"] == 6.0
        assert coreset.metadata["spread_reduction"] == 1.0

    def test_points_are_input_rows(self, blobs):
        coreset = FastCoreset(k=5, seed=0).sample(blobs, 150)
        assert coreset.indices is not None
        np.testing.assert_allclose(coreset.points, blobs[coreset.indices])

    def test_total_weight_close_to_n(self, blobs):
        coreset = FastCoreset(k=6, seed=1).sample(blobs, 300)
        assert coreset.total_weight == pytest.approx(blobs.shape[0], rel=0.3)

    def test_unbiased_cost_estimate(self, blobs, rng):
        centers = blobs[rng.choice(blobs.shape[0], size=6, replace=False)]
        true_cost = clustering_cost(blobs, centers)
        estimates = [
            FastCoreset(k=6, seed=seed).sample(blobs, 250).cost(centers) for seed in range(8)
        ]
        assert np.mean(estimates) == pytest.approx(true_cost, rel=0.25)

    def test_low_distortion_on_easy_data(self, blobs):
        coreset = FastCoreset(k=6, seed=0).sample(blobs, 300)
        assert coreset_distortion(blobs, coreset, k=6, seed=1) < 1.5

    def test_low_distortion_on_outlier_data(self, outlier_data):
        # The scenario where uniform sampling fails: Fast-Coresets must stay accurate.
        distortions = [
            coreset_distortion(
                outlier_data,
                FastCoreset(k=4, seed=seed).sample(outlier_data, 120),
                k=4,
                seed=seed + 100,
            )
            for seed in range(5)
        ]
        assert max(distortions) < 3.0

    def test_low_distortion_on_geometric_data(self, geometric_data):
        coreset = FastCoreset(k=10, seed=0).sample(geometric_data, 300)
        assert coreset_distortion(geometric_data, coreset, k=10, seed=1) < 3.0

    def test_spread_reduction_toggle(self, blobs):
        with_reduction = FastCoreset(k=5, use_spread_reduction=True, seed=0).sample(blobs, 150)
        without_reduction = FastCoreset(k=5, use_spread_reduction=False, seed=0).sample(blobs, 150)
        assert with_reduction.size == without_reduction.size == 150
        assert "original_spread" in with_reduction.metadata
        assert "original_spread" not in without_reduction.metadata

    def test_dimension_reduction_applied_to_wide_data(self, rng):
        wide = rng.normal(size=(500, 200))
        coreset = FastCoreset(k=5, dimension_threshold=64, seed=0).sample(wide, 100)
        # Coreset points keep the original dimensionality even though the
        # seeding ran in the projected space.
        assert coreset.dimension == 200

    def test_center_correction_variant(self, blobs):
        corrected = FastCoreset(k=5, include_center_correction=True, seed=0).sample(blobs, 150)
        plain = FastCoreset(k=5, include_center_correction=False, seed=0).sample(blobs, 150)
        assert corrected.size >= plain.size

    def test_kmedian_mode(self, blobs):
        coreset = FastCoreset(k=5, z=1, seed=0).sample(blobs, 200)
        assert coreset_distortion(blobs, coreset, k=5, z=1, seed=1) < 2.0

    def test_weighted_input_supported(self, blobs, rng):
        weights = rng.uniform(0.5, 2.0, size=blobs.shape[0])
        coreset = FastCoreset(k=5, seed=0).sample(blobs, 200, weights=weights)
        assert coreset.total_weight == pytest.approx(weights.sum(), rel=0.4)

    def test_functional_wrapper(self, blobs):
        coreset = fast_coreset(blobs, k=5, m=100, seed=0)
        assert coreset.size == 100
        assert coreset.method == "fast_coreset"

    def test_invalid_z_rejected(self):
        with pytest.raises(ValueError):
            FastCoreset(k=5, z=3)

    def test_reproducible(self, blobs):
        a = FastCoreset(k=5, seed=11).sample(blobs, 100)
        b = FastCoreset(k=5, seed=11).sample(blobs, 100)
        np.testing.assert_array_equal(a.indices, b.indices)
        np.testing.assert_allclose(a.weights, b.weights)

"""Unit tests for repro.data (synthetic generators, realistic stand-ins, registry)."""

import numpy as np
import pytest

from repro.config import ExperimentScale
from repro.data import (
    benchmark_dataset,
    c_outlier_dataset,
    gaussian_mixture,
    geometric_dataset,
    high_spread_dataset,
    list_datasets,
    load_dataset,
    star_like,
    taxi_like,
)
from repro.data.realistic import REAL_DATASET_SHAPES, adult_like, census_like, covtype_like, mnist_like, song_like
from repro.data.synthetic import add_uniform_jitter
from repro.geometry.quadtree import compute_spread


class TestJitter:
    def test_makes_points_unique(self):
        points = np.zeros((500, 5))
        jittered = add_uniform_jitter(points, seed=0)
        assert np.unique(jittered, axis=0).shape[0] == 500

    def test_amplitude_bounded(self):
        points = np.zeros((100, 3))
        jittered = add_uniform_jitter(points, amplitude=0.01, seed=0)
        assert (jittered >= 0).all() and (jittered <= 0.01).all()


class TestCOutlier:
    def test_shape_and_labels(self):
        dataset = c_outlier_dataset(n=1000, d=5, n_outliers=10, seed=0)
        assert dataset.points.shape == (1000, 5)
        assert (dataset.labels == 1).sum() == 10

    def test_outliers_are_far(self):
        dataset = c_outlier_dataset(n=500, d=4, n_outliers=5, outlier_distance=777.0, seed=0)
        outliers = dataset.points[dataset.labels == 1]
        inliers = dataset.points[dataset.labels == 0]
        assert outliers[:, 0].min() > 700
        assert np.abs(inliers[:, 0]).max() < 1

    def test_too_many_outliers_rejected(self):
        with pytest.raises(ValueError):
            c_outlier_dataset(n=10, n_outliers=10)


class TestGeometric:
    def test_shape(self):
        dataset = geometric_dataset(n=2000, d=15, k=10, seed=0)
        assert dataset.points.shape == (2000, 15)

    def test_masses_decay_geometrically(self):
        dataset = geometric_dataset(n=5000, d=20, k=10, c=50, ratio=2.0, seed=0)
        sizes = np.bincount(dataset.labels)
        # Each subsequent vertex has (roughly) half the previous mass, except
        # the first which absorbs the remainder.
        assert sizes[1] >= sizes[2] >= sizes[3]

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            geometric_dataset(n=100, d=5, ratio=1.0)


class TestGaussianMixture:
    def test_shape_and_cluster_count(self):
        dataset = gaussian_mixture(n=3000, d=10, n_clusters=12, seed=0)
        assert dataset.points.shape == (3000, 10)
        assert np.unique(dataset.labels).shape[0] == 12
        assert dataset.labels.shape == (3000,)

    def test_gamma_zero_gives_balanced_clusters(self):
        dataset = gaussian_mixture(n=4000, d=5, n_clusters=8, gamma=0.0, seed=0)
        sizes = np.bincount(dataset.labels)
        assert sizes.max() / sizes.min() < 1.3

    def test_large_gamma_gives_imbalanced_clusters(self):
        dataset = gaussian_mixture(n=4000, d=5, n_clusters=8, gamma=4.0, seed=0)
        sizes = np.bincount(dataset.labels)
        assert sizes.max() / sizes.min() > 3.0

    def test_sizes_sum_to_n(self):
        dataset = gaussian_mixture(n=1234, d=4, n_clusters=7, gamma=2.0, seed=1)
        assert dataset.points.shape[0] == 1234


class TestBenchmark:
    def test_size_close_to_n(self):
        dataset = benchmark_dataset(k=20, d=10, n=3000, seed=0)
        assert 2500 <= dataset.n <= 3100

    def test_structure_parameters_recorded(self):
        dataset = benchmark_dataset(k=20, d=10, n=1000, seed=0)
        parameters = dataset.parameters
        assert parameters["k1"] + parameters["k2"] + parameters["k3"] >= 3

    def test_points_unique(self):
        dataset = benchmark_dataset(k=10, d=8, n=500, seed=0)
        assert np.unique(dataset.points, axis=0).shape[0] == dataset.n


class TestHighSpread:
    def test_spread_grows_with_r(self):
        small = high_spread_dataset(n=3000, r=10, seed=0)
        large = high_spread_dataset(n=3000, r=30, seed=0)
        assert compute_spread(large.points, seed=0) > compute_spread(small.points, seed=0)

    def test_two_dimensional(self):
        assert high_spread_dataset(n=1000, r=10, seed=0).d == 2


class TestRealisticStandIns:
    def test_shapes_match_documented_dimensions(self):
        fraction = 0.01
        for name, builder in (
            ("adult", adult_like),
            ("star", star_like),
            ("song", song_like),
            ("covtype", covtype_like),
            ("taxi", taxi_like),
            ("census", census_like),
        ):
            dataset = builder(fraction, seed=0)
            assert dataset.d == REAL_DATASET_SHAPES[name][1], name
            assert dataset.n >= 2000

    def test_mnist_dimension(self):
        assert mnist_like(0.05, seed=0).d == 784

    def test_star_has_tiny_bright_cluster(self):
        dataset = star_like(0.05, seed=0)
        bright = (dataset.points > 200).all(axis=1).mean()
        assert 0.0 < bright < 0.02

    def test_taxi_has_remote_clusters(self):
        dataset = taxi_like(0.02, seed=0)
        distances = np.linalg.norm(dataset.points, axis=1)
        assert (distances > 10).any()
        assert (distances < 1).mean() > 0.9

    def test_fraction_scales_size(self):
        small = adult_like(0.05, seed=0)
        large = adult_like(0.10, seed=0)
        assert large.n > small.n

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            adult_like(0.0)


class TestRegistry:
    def test_all_names_buildable(self, tiny_scale):
        for name in list_datasets():
            dataset = load_dataset(name, scale=tiny_scale, seed=0)
            assert dataset.n > 0
            assert dataset.d > 0

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            load_dataset("not-a-dataset")

    def test_overrides_forwarded(self, tiny_scale):
        dataset = load_dataset("gaussian", scale=tiny_scale, seed=0, gamma=3.0)
        assert dataset.parameters["gamma"] == 3.0

    def test_scale_controls_synthetic_size(self):
        small = load_dataset("gaussian", scale=ExperimentScale(synthetic_n=1000, synthetic_d=5), seed=0)
        large = load_dataset("gaussian", scale=ExperimentScale(synthetic_n=2000, synthetic_d=5), seed=0)
        assert large.n == 2 * small.n

    def test_list_datasets_filters(self):
        synthetic_only = list_datasets(include_realistic=False)
        assert "adult" not in synthetic_only
        assert "gaussian" in synthetic_only

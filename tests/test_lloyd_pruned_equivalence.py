"""Exact-equivalence suite: pruned Lloyd vs the frozen naive reference.

The contract of :mod:`repro.clustering.lloyd` is that the Hamerly-bounded
engine may only *skip* work whose outcome is provably unchanged, so every
observable output — assignments, centers, costs, iteration counts,
convergence flags, and the consumption of the random generator (exercised by
the empty-cluster repair path) — must be **bit-identical** to the frozen
full-recompute loop in :mod:`repro.reference.naive_lloyd`.
"""

import numpy as np
import pytest

from repro.clustering.lloyd import kmeans
from repro.data.synthetic import gaussian_mixture
from repro.native import use_native
from repro.reference.naive_lloyd import naive_kmeans


# Run the whole suite twice: once with the compiled kernel tier enabled and
# once forced to the pure-numpy fallbacks.  The bit-identity contract against
# the frozen naive reference must hold in both dispatch modes.
@pytest.fixture(scope="module", params=[True, False], ids=["native", "fallback"], autouse=True)
def _kernel_tier(request):
    with use_native(request.param):
        yield

SHAPES = [(400, 2, 3), (1500, 8, 12), (1000, 3, 25), (600, 16, 7), (800, 5, 40)]


def _assert_bit_identical(result, reference):
    assert np.array_equal(result.assignment, reference.assignment)
    assert np.array_equal(result.centers, reference.centers)
    assert result.cost == reference.cost
    assert result.iterations == reference.iterations
    assert result.converged == reference.converged


class TestPrunedEquivalence:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("shape", SHAPES)
    def test_bit_identical_across_seeds_and_shapes(self, seed, shape):
        n, d, k = shape
        points = gaussian_mixture(
            n=n, d=d, n_clusters=max(2, k // 2), gamma=float(seed % 3), seed=seed
        ).points
        pruned = kmeans(points, k, seed=seed, max_iterations=40)
        naive = naive_kmeans(points, k, seed=seed, max_iterations=40)
        _assert_bit_identical(pruned, naive)

    @pytest.mark.parametrize("seed", range(3))
    def test_bit_identical_with_weights(self, seed):
        points = gaussian_mixture(n=900, d=6, n_clusters=5, gamma=1.0, seed=seed).points
        weights = np.random.default_rng(seed).uniform(0.05, 4.0, points.shape[0])
        pruned = kmeans(points, 11, weights=weights, seed=seed, max_iterations=40)
        naive = naive_kmeans(points, 11, weights=weights, seed=seed, max_iterations=40)
        _assert_bit_identical(pruned, naive)

    def test_bit_identical_through_empty_cluster_reseed(self):
        """Duplicate far-away initial centers force the multi-empty repair path."""
        points = np.random.default_rng(0).normal(size=(300, 4))
        initial = np.full((6, 4), 1e6)
        initial[0] = 0.0
        pruned = kmeans(points, 6, initial_centers=initial, seed=3, max_iterations=30)
        naive = naive_kmeans(points, 6, initial_centers=initial, seed=3, max_iterations=30)
        _assert_bit_identical(pruned, naive)
        # The repair must actually have fired: every final center is finite
        # and populated (no center left stranded at 1e6).
        assert np.abs(pruned.centers).max() < 1e5

    def test_bit_identical_k1_and_k_ge_n(self):
        points = np.random.default_rng(1).normal(size=(120, 3))
        for k in (1, 2, 120):
            _assert_bit_identical(
                kmeans(points, k, seed=7, max_iterations=20),
                naive_kmeans(points, k, seed=7, max_iterations=20),
            )

    def test_naive_algorithm_flag_matches_reference(self):
        points = gaussian_mixture(n=700, d=4, n_clusters=6, gamma=0.0, seed=2).points
        live_naive = kmeans(points, 9, seed=4, algorithm="naive", max_iterations=30)
        frozen = naive_kmeans(points, 9, seed=4, max_iterations=30)
        _assert_bit_identical(live_naive, frozen)

    def test_unknown_algorithm_rejected(self):
        points = np.random.default_rng(0).normal(size=(50, 2))
        with pytest.raises(ValueError, match="algorithm"):
            kmeans(points, 3, algorithm="elkan", seed=0)

    def test_pruning_actually_prunes(self):
        """The equivalence would be vacuous if the engine always recomputed."""
        points = gaussian_mixture(n=4000, d=8, n_clusters=10, gamma=0.0, seed=5).points
        result = kmeans(points, 20, seed=5, max_iterations=40)
        assert result.recompute_fraction < 0.7
        assert naive_kmeans(points, 20, seed=5, max_iterations=40).recompute_fraction == 1.0


class TestEquivalenceExtremes:
    """Fused-kernel coverage at the edges of the (n, k) grid."""

    def test_k_one_runner_up_undefined(self):
        """With a single center the runner-up distance is undefined (+inf):
        the engine must never recompute and still match bit for bit."""
        points = np.random.default_rng(2).normal(size=(500, 4)) * 3.0
        _assert_bit_identical(
            kmeans(points, 1, seed=9, max_iterations=25),
            naive_kmeans(points, 1, seed=9, max_iterations=25),
        )

    @pytest.mark.parametrize("k", [115, 118, 120])
    def test_k_near_n_mass_reseeds(self, k):
        """k close to n on heavily duplicated data: many clusters empty at
        once every iteration, exercising the multi-empty re-seed path and
        its generator consumption under the fused kernel."""
        rng = np.random.default_rng(4)
        base = rng.normal(size=(30, 3))
        points = np.concatenate([base, base, base, base])  # n=120, 30 distinct
        pruned = kmeans(points, k, seed=6, max_iterations=30)
        naive = naive_kmeans(points, k, seed=6, max_iterations=30)
        _assert_bit_identical(pruned, naive)

    def test_mass_recompute_sentinel_bounds_stay_sound(self, monkeypatch):
        """Regression test: blocks above the detail limit skip the runner-up
        id and third distance; the fallback bound for the remaining centers
        must still cover *all* of them (an early version only bounded the
        runner-up, silently freezing wrong assignments)."""
        import repro.clustering.lloyd as lloyd_module

        monkeypatch.setattr(lloyd_module, "_THIRD_DISTANCE_ROW_LIMIT", 64)
        points = gaussian_mixture(n=2500, d=6, n_clusters=8, gamma=0.0, seed=8).points
        pruned = kmeans(points, 24, seed=3, max_iterations=40)
        naive = naive_kmeans(points, 24, seed=3, max_iterations=40)
        _assert_bit_identical(pruned, naive)

    def test_prove_stay_filter_disabled_and_forced(self, monkeypatch):
        """The phase-three prove-stay filter is an optimisation only: forcing
        it on for every suspect set (or off entirely) must not change any
        output bit."""
        import repro.clustering.lloyd as lloyd_module

        points = gaussian_mixture(n=3000, d=5, n_clusters=10, gamma=0.0, seed=12).points
        reference = naive_kmeans(points, 15, seed=2, max_iterations=35)
        monkeypatch.setattr(lloyd_module, "_PROVE_STAY_FRACTION", 1)
        _assert_bit_identical(kmeans(points, 15, seed=2, max_iterations=35), reference)
        monkeypatch.setattr(lloyd_module, "_PROVE_STAY_FRACTION", 10**9)
        _assert_bit_identical(kmeans(points, 15, seed=2, max_iterations=35), reference)


class TestReseedDistinctness:
    def test_multiple_empty_clusters_reseed_distinct_points(self):
        """Satellite fix: two empty clusters must not re-seed at the same point.

        With ``replace=True`` the two far-away duplicates could both be
        re-seeded at the same heavy point, leaving one of them empty again on
        the next iteration; without replacement the re-seeded centers differ.
        """
        from repro.clustering.lloyd import lloyd_iteration

        rng = np.random.default_rng(11)
        points = np.concatenate(
            [rng.normal(size=(50, 2)), rng.normal(loc=50.0, size=(50, 2))]
        )
        weights = np.ones(points.shape[0])
        centers = np.full((4, 2), 1e7)
        centers[0] = 0.0
        for trial in range(20):
            updated = lloyd_iteration(points, centers, weights, np.random.default_rng(trial))
            reseeded = updated[1:]
            distinct = {tuple(row) for row in np.round(reseeded, 12)}
            assert len(distinct) == reseeded.shape[0]

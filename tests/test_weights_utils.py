"""Unit tests for repro.utils.weights."""

import numpy as np
import pytest

from repro.utils.weights import (
    effective_sample_size,
    normalize_weights,
    weighted_mean,
    weighted_quantile,
    weighted_variance,
)


class TestNormalizeWeights:
    def test_sums_to_one(self):
        normalized = normalize_weights(np.array([1.0, 3.0]))
        assert normalized.sum() == pytest.approx(1.0)
        np.testing.assert_allclose(normalized, [0.25, 0.75])

    def test_zero_sum_raises(self):
        with pytest.raises(ValueError):
            normalize_weights(np.zeros(3))


class TestWeightedMean:
    def test_unit_weights_match_numpy(self):
        points = np.arange(12, dtype=float).reshape(4, 3)
        np.testing.assert_allclose(weighted_mean(points), points.mean(axis=0))

    def test_weights_shift_the_mean(self):
        points = np.array([[0.0], [10.0]])
        weights = np.array([3.0, 1.0])
        assert weighted_mean(points, weights)[0] == pytest.approx(2.5)

    def test_zero_weights_fall_back_to_unweighted(self):
        points = np.array([[0.0], [10.0]])
        assert weighted_mean(points, np.zeros(2))[0] == pytest.approx(5.0)


class TestWeightedVariance:
    def test_equals_one_means_cost(self):
        points = np.array([[0.0], [2.0]])
        # Mean is 1, squared deviations are 1 + 1 = 2.
        assert weighted_variance(points) == pytest.approx(2.0)

    def test_weighting_changes_cost(self):
        points = np.array([[0.0], [2.0]])
        weights = np.array([3.0, 1.0])
        # Weighted mean is 0.5; cost = 3*0.25 + 1*2.25 = 3.
        assert weighted_variance(points, weights) == pytest.approx(3.0)

    def test_single_point_is_zero(self):
        assert weighted_variance(np.array([[4.0, 2.0]])) == pytest.approx(0.0)


class TestWeightedQuantile:
    def test_median_of_unit_weights(self):
        values = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        assert weighted_quantile(values, 0.5) == pytest.approx(3.0)

    def test_weights_move_the_quantile(self):
        values = np.array([1.0, 10.0])
        weights = np.array([9.0, 1.0])
        assert weighted_quantile(values, 0.5, weights) == pytest.approx(1.0)

    def test_extreme_quantiles(self):
        values = np.array([3.0, 1.0, 2.0])
        assert weighted_quantile(values, 0.0) == pytest.approx(1.0)
        assert weighted_quantile(values, 1.0) == pytest.approx(3.0)

    def test_invalid_quantile_raises(self):
        with pytest.raises(ValueError):
            weighted_quantile(np.array([1.0]), 1.5)

    def test_two_dimensional_values_raise(self):
        with pytest.raises(ValueError):
            weighted_quantile(np.ones((2, 2)), 0.5)

    def test_duplicate_values_use_stable_order(self):
        # Regression: with duplicated values the sort must be stable.  An
        # unstable introsort permutes the tied weights, which changes the
        # floating-point accumulation order of the cumulative CDF, and on an
        # exact-threshold hit the crossing lands on the other side of the tie
        # boundary.  For this input numpy's default argsort answered 1.0
        # while the stable order pins 2.0.
        values = np.array([2.0, 1.0, 1.0, 2.0, 1.0, 1.0, 2.0, 2.0])
        weights = np.array([0.1, 0.7, 0.1, 0.7, 0.1, 0.7, 0.1, 0.7])
        assert weighted_quantile(values, 0.5, weights) == 2.0

    def test_unit_weights_match_inverted_cdf_on_duplicates(self):
        values = np.random.default_rng(3).integers(0, 5, size=41).astype(float)
        for quantile in np.linspace(0.0, 1.0, 21):
            assert weighted_quantile(values, float(quantile)) == float(
                np.quantile(values, quantile, method="inverted_cdf")
            )


class TestEffectiveSampleSize:
    def test_uniform_weights_give_n(self):
        assert effective_sample_size(np.ones(50)) == pytest.approx(50.0)

    def test_single_heavy_weight_gives_one(self):
        weights = np.zeros(10)
        weights[0] = 5.0
        assert effective_sample_size(weights) == pytest.approx(1.0)

    def test_zero_weights_give_zero(self):
        assert effective_sample_size(np.zeros(5)) == 0.0

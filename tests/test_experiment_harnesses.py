"""Integration smoke tests for every experiment harness (tables and figures).

Each harness is run at a tiny scale and its output rows are checked for the
expected shape: correct experiment tag, one row per configuration, and
well-formed (finite, correctly-signed) values.  The heavier statistical
claims live in the benchmarks; these tests guarantee the harnesses stay
runnable.
"""

import math

import numpy as np
import pytest

from repro.experiments import (
    figure1_runtime_vs_k,
    figure3_cluster_capture,
    figure4_kmedian_sweep,
    table1_spread_runtime,
    table2_distortion_ratios,
    table3_dataset_summary,
    table4_sampler_sweep,
    table5_streaming_comparison,
    table6_bico_distortion,
    table7_imbalance_sweep,
    table8_downstream_cost,
    table9_streamkm_distortion,
)
from repro.experiments.ablations import (
    ablation_seeding,
    ablation_spread_reduction,
    ablation_weight_correction,
)
from repro.experiments.common import make_samplers
from repro.evaluation.tables import format_table


class TestCommonHelpers:
    def test_make_samplers_line_up(self):
        samplers = make_samplers(16, seed=0)
        assert set(samplers) == {"uniform", "lightweight", "welterweight", "fast_coreset"}

    def test_make_samplers_with_sensitivity(self):
        samplers = make_samplers(16, seed=0, include_sensitivity=True)
        assert "sensitivity" in samplers

    def test_welterweight_default_j(self):
        samplers = make_samplers(64, seed=0)
        assert samplers["welterweight"].j == int(math.ceil(math.log2(64)))


class TestTable1:
    def test_rows_and_values(self, tiny_scale):
        rows = table1_spread_runtime(scale=tiny_scale, r_values=(5, 10), k=6, repetitions=1)
        assert len(rows) == 2
        assert all(row.experiment == "table1" for row in rows)
        assert all(row.values["runtime_mean"] > 0 for row in rows)
        assert rows[0].parameters["r"] == 5.0


class TestFigure1:
    def test_rows_and_slowdown_factors(self, tiny_scale):
        rows = figure1_runtime_vs_k(
            scale=tiny_scale, k_values=(4, 8), datasets=("gaussian",), repetitions=1, m_scalar=5
        )
        assert len(rows) == 4  # 2 methods x 2 k values
        methods = {row.method for row in rows}
        assert methods == {"sensitivity", "fast_coreset"}
        for row in rows:
            assert row.values["slowdown_vs_smallest_k"] > 0


class TestTable2:
    def test_ratio_rows(self, tiny_scale):
        rows = table2_distortion_ratios(scale=tiny_scale, datasets=("adult", "star"), repetitions=1)
        assert len(rows) == 4  # 2 datasets x 2 methods
        for row in rows:
            assert row.values["ratio"] > 0
            assert np.isfinite(row.values["sensitivity_distortion"])


class TestTable3:
    def test_summary_matches_documented_shapes(self, tiny_scale):
        rows = table3_dataset_summary(scale=tiny_scale, datasets=("adult", "taxi"))
        assert len(rows) == 2
        adult = rows[0]
        assert adult.values["paper_points"] == 48842
        assert adult.values["paper_dim"] == 14
        assert adult.values["generated_dim"] == 14


class TestTable4:
    def test_sweep_row_count_and_tag(self, tiny_scale):
        rows = table4_sampler_sweep(
            scale=tiny_scale, datasets=("gaussian", "c_outlier"), m_scalars=(10,), repetitions=1
        )
        assert len(rows) == 2 * 1 * 4  # datasets x m_scalars x samplers
        assert all(row.experiment == "table4" for row in rows)
        assert all(row.values["distortion_mean"] >= 1.0 for row in rows)
        assert all(row.values["runtime_mean"] >= 0.0 for row in rows)


class TestTable5:
    def test_static_and_streaming_rows_paired(self, tiny_scale):
        rows = table5_streaming_comparison(
            scale=tiny_scale, datasets=("gaussian",), repetitions=1, n_blocks=4
        )
        assert len(rows) == 4 * 2  # samplers x {static, streaming}
        settings = {row.method.split("[")[1].rstrip("]") for row in rows}
        assert settings == {"static", "streaming"}


class TestTable6:
    def test_bico_rows(self, tiny_scale):
        rows = table6_bico_distortion(
            scale=tiny_scale,
            datasets=("gaussian",),
            streaming_datasets=("gaussian",),
            m_scalars=(10,),
            repetitions=1,
            n_blocks=4,
        )
        methods = {row.method for row in rows}
        assert "bico[static,m=10k]" in methods
        assert "bico[streaming]" in methods


class TestTable7:
    def test_gamma_j_grid(self, tiny_scale):
        rows = table7_imbalance_sweep(
            scale=tiny_scale, gamma_values=(0.0, 3.0), repetitions=1, k=8, n_clusters=6, coreset_size=160
        )
        assert len(rows) == 2 * 5  # gammas x methods
        gammas = {row.parameters["gamma"] for row in rows}
        assert gammas == {0.0, 3.0}


class TestTable8:
    def test_downstream_costs_positive(self, tiny_scale):
        rows = table8_downstream_cost(scale=tiny_scale, datasets=("adult",), k=6)
        assert len(rows) == 4
        assert all(row.values["cost_on_full"] > 0 for row in rows)


class TestTable9:
    def test_streamkm_rows(self, tiny_scale):
        rows = table9_streamkm_distortion(scale=tiny_scale, datasets=("gaussian", "c_outlier"), repetitions=1)
        assert len(rows) == 2
        assert all(row.method == "streamkm++" for row in rows)


class TestFigure3:
    def test_capture_statistics(self, tiny_scale):
        rows = figure3_cluster_capture(scale=tiny_scale, repetitions=3, coreset_size=80)
        assert len(rows) == 4
        for row in rows:
            assert 0.0 <= row.values["capture_rate"] <= 1.0


class TestFigure4:
    def test_kmedian_tag(self, tiny_scale):
        rows = figure4_kmedian_sweep(
            scale=tiny_scale, datasets=("gaussian",), m_scalars=(10,), repetitions=1
        )
        assert all(row.experiment == "figure4" for row in rows)
        assert all(row.parameters["z"] == 1.0 for row in rows)


class TestAblations:
    def test_weight_correction_rows(self, tiny_scale):
        rows = ablation_weight_correction(scale=tiny_scale, datasets=("gaussian",), repetitions=1)
        assert len(rows) == 2

    def test_spread_reduction_rows(self, tiny_scale):
        rows = ablation_spread_reduction(scale=tiny_scale, r_values=(5,), k=6, repetitions=1)
        assert {row.method for row in rows} == {
            "fast_coreset[with_reduction]",
            "fast_coreset[without_reduction]",
        }

    def test_seeding_rows(self, tiny_scale):
        rows = ablation_seeding(scale=tiny_scale, datasets=("gaussian",), repetitions=1)
        assert {row.method for row in rows} == {"quadtree_seeding", "kmeans++_seeding"}


class TestFormatting:
    def test_harness_rows_render(self, tiny_scale):
        rows = table9_streamkm_distortion(scale=tiny_scale, datasets=("gaussian",), repetitions=1)
        text = format_table(rows, value_names=["distortion_mean"])
        assert "streamkm++" in text

"""Unit tests for repro.geometry.grid."""

import numpy as np
import pytest

from repro.geometry.grid import (
    assign_to_grid,
    count_distinct_cells,
    group_points_by_cell,
    hash_rows,
    random_grid_shift,
    separation_probability_bound,
)


class TestHashRows:
    def test_identical_rows_same_key(self):
        lattice = np.array([[1, 2, 3], [1, 2, 3], [4, 5, 6]])
        keys = hash_rows(lattice)
        assert keys[0] == keys[1]
        assert keys[0] != keys[2]

    def test_negative_coordinates_supported(self):
        lattice = np.array([[-1, -2], [-1, -2], [0, 0]])
        keys = hash_rows(lattice)
        assert keys[0] == keys[1]
        assert keys[0] != keys[2]

    def test_distinct_rows_distinct_keys(self, rng):
        lattice = rng.integers(-1000, 1000, size=(500, 4))
        unique_rows = np.unique(lattice, axis=0).shape[0]
        unique_keys = np.unique(hash_rows(lattice)).shape[0]
        assert unique_keys == unique_rows


class TestRandomGridShift:
    def test_shape_and_range(self):
        shift = random_grid_shift(5, 10.0, seed=0)
        assert shift.shape == (5,)
        assert (shift >= 0).all() and (shift <= 10.0).all()

    def test_same_scalar_on_every_coordinate(self):
        shift = random_grid_shift(4, 3.0, seed=1)
        assert np.unique(shift).size == 1

    def test_invalid_side_raises(self):
        with pytest.raises(ValueError):
            random_grid_shift(3, 0.0)


class TestAssignToGrid:
    def test_points_in_same_cell_share_id(self):
        points = np.array([[0.1, 0.1], [0.2, 0.2], [5.1, 5.1]])
        assignment = assign_to_grid(points, side=1.0, shift=np.zeros(2))
        assert assignment.cell_ids[0] == assignment.cell_ids[1]
        assert assignment.cell_ids[0] != assignment.cell_ids[2]

    def test_occupied_cell_count(self):
        points = np.array([[0.5, 0.5], [1.5, 0.5], [0.5, 1.5]])
        assignment = assign_to_grid(points, side=1.0, shift=np.zeros(2))
        assert assignment.occupied_cell_count == 3

    def test_cells_partition_the_points(self, rng):
        points = rng.normal(size=(100, 3)) * 10
        assignment = assign_to_grid(points, side=2.0, shift=random_grid_shift(3, 2.0, seed=0))
        members = np.concatenate(list(assignment.cells.values()))
        assert sorted(members.tolist()) == list(range(100))

    def test_cell_centers_contain_their_points(self, rng):
        points = rng.normal(size=(50, 2)) * 5
        side = 3.0
        assignment = assign_to_grid(points, side=side, shift=np.zeros(2))
        centers = assignment.cell_centers()
        for cell_id, member_indices in assignment.cells.items():
            center = centers[cell_id]
            for index in member_indices:
                assert np.all(np.abs(points[index] - center) <= side / 2 + 1e-9)

    def test_shift_shape_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            assign_to_grid(rng.normal(size=(5, 3)), side=1.0, shift=np.zeros(2))

    def test_group_points_by_cell_order(self, rng):
        points = rng.normal(size=(30, 2))
        assignment = assign_to_grid(points, side=0.5, shift=np.zeros(2))
        groups = group_points_by_cell(assignment)
        assert sum(len(g) for g in groups) == 30


class TestCountDistinctCells:
    def test_matches_assignment(self, rng):
        points = rng.normal(size=(200, 3)) * 4
        shift = random_grid_shift(3, 1.5, seed=3)
        assignment = assign_to_grid(points, 1.5, shift)
        assert count_distinct_cells(points, 1.5, shift) == assignment.occupied_cell_count

    def test_monotone_in_cell_side(self, rng):
        points = rng.normal(size=(300, 2)) * 10
        shift = np.zeros(2)
        coarse = count_distinct_cells(points, 8.0, shift)
        fine = count_distinct_cells(points, 1.0, shift)
        assert fine >= coarse

    def test_single_cell_for_huge_side(self, rng):
        # Keep all coordinates positive so the cell boundary at the origin
        # cannot split the cloud regardless of the (zero) shift.
        points = np.abs(rng.normal(size=(50, 2))) + 1.0
        assert count_distinct_cells(points, 1e6, np.zeros(2)) == 1


class TestSeparationProbability:
    def test_lemma_bound_holds_empirically(self, rng):
        # Lemma 4.3: Pr[p, q separated] <= sqrt(d) ||p - q|| / side.
        p = np.array([0.0, 0.0])
        q = np.array([0.3, 0.4])  # distance 0.5
        side = 5.0
        bound = separation_probability_bound(p, q, side)
        separated = 0
        trials = 2000
        for trial in range(trials):
            shift = random_grid_shift(2, side, seed=trial)
            cells = np.floor((np.stack([p, q]) - shift) / side)
            separated += int(not np.array_equal(cells[0], cells[1]))
        empirical = separated / trials
        assert empirical <= bound + 0.03

    def test_bound_capped_at_one(self):
        assert separation_probability_bound(np.zeros(2), np.ones(2) * 100, 1.0) == 1.0

"""Unit tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import (
    as_generator,
    permutation,
    random_seed_from,
    sample_without_replacement,
    spawn_generators,
    weighted_index_draw,
    weighted_index_draws,
)


class TestAsGenerator:
    def test_none_returns_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_is_reproducible(self):
        first = as_generator(42).integers(0, 1_000_000, size=10)
        second = as_generator(42).integers(0, 1_000_000, size=10)
        np.testing.assert_array_equal(first, second)

    def test_different_seeds_differ(self):
        first = as_generator(1).integers(0, 1_000_000, size=10)
        second = as_generator(2).integers(0, 1_000_000, size=10)
        assert not np.array_equal(first, second)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert as_generator(generator) is generator

    def test_seed_sequence_accepted(self):
        sequence = np.random.SeedSequence(7)
        assert isinstance(as_generator(sequence), np.random.Generator)

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError):
            as_generator("not-a-seed")


class TestSpawnGenerators:
    def test_count_matches(self):
        assert len(spawn_generators(0, 5)) == 5

    def test_children_are_independent(self):
        children = spawn_generators(0, 2)
        a = children[0].integers(0, 1_000_000, size=20)
        b = children[1].integers(0, 1_000_000, size=20)
        assert not np.array_equal(a, b)

    def test_reproducible_from_int_seed(self):
        a = [g.integers(0, 10**6) for g in spawn_generators(3, 4)]
        b = [g.integers(0, 10**6) for g in spawn_generators(3, 4)]
        assert a == b

    def test_spawn_from_generator(self):
        parent = np.random.default_rng(0)
        children = spawn_generators(parent, 3)
        assert len(children) == 3

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_zero_count_is_empty(self):
        assert spawn_generators(0, 0) == []


class TestSamplingHelpers:
    def test_random_seed_from_is_int(self):
        seed = random_seed_from(np.random.default_rng(0))
        assert isinstance(seed, int)
        assert seed >= 0

    def test_permutation_covers_range(self):
        perm = permutation(np.random.default_rng(0), 50)
        assert sorted(perm.tolist()) == list(range(50))

    def test_sample_without_replacement_unique(self):
        indices = sample_without_replacement(np.random.default_rng(0), 100, 30)
        assert len(set(indices.tolist())) == 30

    def test_sample_without_replacement_respects_zero_probability(self):
        probabilities = np.zeros(10)
        probabilities[:5] = 1.0
        indices = sample_without_replacement(
            np.random.default_rng(0), 10, 5, probabilities=probabilities
        )
        assert set(indices.tolist()) == {0, 1, 2, 3, 4}

    def test_sample_too_many_raises(self):
        with pytest.raises(ValueError):
            sample_without_replacement(np.random.default_rng(0), 5, 6)

    def test_sample_zero_probability_sum_raises(self):
        with pytest.raises(ValueError):
            sample_without_replacement(
                np.random.default_rng(0), 5, 2, probabilities=np.zeros(5)
            )


class TestWeightedIndexDraw:
    def test_matches_probabilities(self):
        generator = np.random.default_rng(0)
        mass = np.array([1.0, 3.0, 0.0, 6.0])
        counts = np.zeros(4)
        for _ in range(20_000):
            counts[weighted_index_draw(generator, mass)] += 1
        empirical = counts / counts.sum()
        expected = mass / mass.sum()
        np.testing.assert_allclose(empirical, expected, atol=0.02)

    def test_zero_mass_entries_never_drawn(self):
        generator = np.random.default_rng(1)
        mass = np.array([0.0, 1.0, 0.0, 0.0, 2.0, 0.0])
        for _ in range(2_000):
            assert weighted_index_draw(generator, mass) in (1, 4)

    def test_degenerate_total_returns_sentinel(self):
        generator = np.random.default_rng(2)
        assert weighted_index_draw(generator, np.zeros(5)) == -1
        assert weighted_index_draw(generator, np.array([])) == -1
        assert weighted_index_draw(generator, np.array([np.inf, 1.0])) == -1

    def test_single_positive_entry(self):
        generator = np.random.default_rng(3)
        assert weighted_index_draw(generator, np.array([0.0, 0.0, 5.0])) == 2

    def test_reproducible_with_same_seed(self):
        mass = np.arange(1.0, 11.0)
        draws_a = [weighted_index_draw(np.random.default_rng(7), mass) for _ in range(1)]
        draws_b = [weighted_index_draw(np.random.default_rng(7), mass) for _ in range(1)]
        assert draws_a == draws_b


class TestWeightedIndexDraws:
    def test_batch_matches_probabilities(self):
        generator = np.random.default_rng(0)
        mass = np.array([2.0, 0.0, 2.0, 4.0])
        draws = weighted_index_draws(generator, mass, 20_000)
        counts = np.bincount(draws, minlength=4)
        np.testing.assert_allclose(counts / counts.sum(), mass / mass.sum(), atol=0.02)
        assert counts[1] == 0

    def test_degenerate_total_returns_none(self):
        generator = np.random.default_rng(1)
        assert weighted_index_draws(generator, np.zeros(3), 5) is None
        assert weighted_index_draws(generator, np.array([]), 5) is None

    def test_returns_int64(self):
        generator = np.random.default_rng(2)
        draws = weighted_index_draws(generator, np.ones(4), 10)
        assert draws.dtype == np.int64
        assert draws.shape == (10,)

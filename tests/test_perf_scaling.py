"""Performance-shape smoke tests for the Fast-kmeans++ hot path.

These tests guard the *asymptotic shape* of the seeding, not absolute wall
time: the incremental D²-mass update must keep the per-center cost bounded
by the points that actually improve, so the total seeding time grows far
slower than linearly in ``k``.  A reintroduced ``O(nk)`` recompute (a fresh
``weights * best_distance**z`` and probability vector per center) fails the
ratio bound immediately.

Wall-clock tests are inherently machine-sensitive, so the test is marked
``slow`` (deselect with ``-m "not slow"``), uses a best-of-repeats timer,
and asserts a generous margin below the linear-growth ratio.
"""

import time

import numpy as np
import pytest

from repro.clustering.fast_kmeans_pp import fast_kmeans_plus_plus
from repro.reference.seed_hotpath import seed_fast_kmeans_plus_plus


def _best_of(callable_, repeats=3):
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.slow
class TestSubLinearInK:
    def test_seeding_time_sublinear_in_k(self):
        rng = np.random.default_rng(0)
        points = rng.normal(size=(20_000, 8)) * 10.0
        k_small, k_large = 8, 64

        # k grows 8x; linear growth in k would multiply the seeding part of
        # the runtime by ~8 on top of the k-independent tree construction.
        # With the incremental mass update the measured ratio stays far
        # below that — we allow half the linear ratio as a noise-tolerant
        # ceiling, and retry once so a single scheduler hiccup on a loaded
        # machine cannot abort the tier-1 gate (which runs with -x).
        for attempt in range(2):
            small = _best_of(lambda: fast_kmeans_plus_plus(points, k_small, seed=1))
            large = _best_of(lambda: fast_kmeans_plus_plus(points, k_large, seed=1))
            if large <= max(small, 0.02) * 4.0:
                return
        pytest.fail(
            f"seeding slowed down super-linearly in k: "
            f"t(k={k_small})={small:.4f}s, t(k={k_large})={large:.4f}s"
        )


class TestDistributionalEquivalence:
    """The searchsorted draw must select centers with the seed's law.

    The optimized implementation consumes the uniform stream differently
    (cumsum + searchsorted instead of ``generator.choice``), so fixed-seed
    outputs differ from the seed revision — but the *distribution* of the
    selected centers must match.  We compare the per-point selection
    frequency of both implementations over many independent seeds on a tiny
    input where every draw matters.
    """

    def test_center_selection_frequencies_match_seed(self):
        rng = np.random.default_rng(42)
        points = np.concatenate(
            [
                rng.normal(size=(12, 2)),
                rng.normal(size=(12, 2)) + 40.0,
                rng.normal(size=(12, 2)) - 40.0,
            ]
        )
        n, k, trials = points.shape[0], 3, 400

        def frequencies(fn):
            counts = np.zeros(n)
            for trial in range(trials):
                solution = fn(points, k, seed=10_000 + trial)
                for center in solution.centers:
                    counts[np.argmin(np.linalg.norm(points - center, axis=1))] += 1
            return counts / counts.sum()

        freq_new = frequencies(fast_kmeans_plus_plus)
        freq_seed = frequencies(seed_fast_kmeans_plus_plus)
        # Total-variation distance between the empirical selection laws;
        # with 1200 selected centers per side the sampling noise sits well
        # below the 0.12 ceiling unless the law itself changed.
        tv = 0.5 * np.abs(freq_new - freq_seed).sum()
        assert tv < 0.12, f"selection laws diverge: TV distance {tv:.3f}"

    def test_weighted_first_draw_law(self):
        # k = 1 isolates the very first draw: selection must follow the
        # input weights for both mechanisms.
        points = np.arange(8, dtype=np.float64).reshape(-1, 1) * 10.0
        weights = np.array([1.0, 1.0, 1.0, 1.0, 8.0, 1.0, 1.0, 1.0])
        counts = np.zeros(8)
        for trial in range(600):
            solution = fast_kmeans_plus_plus(points, 1, weights=weights, seed=trial)
            counts[int(solution.centers[0, 0] // 10)] += 1
        expected = weights / weights.sum()
        tv = 0.5 * np.abs(counts / counts.sum() - expected).sum()
        assert tv < 0.1, f"first-draw law diverges from weights: TV {tv:.3f}"

"""Oracle-equivalence suite for the windowed / decaying streaming tree.

Every behavioural claim of ``repro.streaming.window`` is pinned against
:class:`repro.reference.NaiveWindowReference`, the frozen recompute-from-
window oracle: live block membership, the retained input-point multiset in
lossless configurations, single-step decay factors, and compression quality
(distortion parity with a direct compression of the recomputed window).
"""

import numpy as np
import pytest

from repro.core import SensitivitySampling, UniformSampling
from repro.data import drifting_mixture
from repro.evaluation import coreset_distortion
from repro.reference import NaiveWindowReference
from repro.streaming import (
    DataStream,
    DriftDetector,
    ExponentialDecay,
    SlidingCountWindow,
    StreamingCoresetPipeline,
    WindowedMergeReduceTree,
    WindowPolicy,
)
from repro.streaming.merge_reduce import stream_dataset


def _policy(kind):
    return SlidingCountWindow(4) if kind == "sliding" else ExponentialDecay(3.0)


def _oracle(kind):
    if kind == "sliding":
        return NaiveWindowReference(window_blocks=4)
    return NaiveWindowReference(half_life=3.0)


def _sorted_rows(points):
    return points[np.lexsort(points.T)]


class TestPolicies:
    def test_sliding_window_membership(self):
        window = SlidingCountWindow(3)
        # At now=5 the window covers blocks {3, 4, 5}.
        assert window.expired(0, 1, 5)
        assert window.expired(2, 3, 5)
        assert not window.expired(3, 4, 5)
        assert not window.expired(5, 6, 5)
        # A bucket survives as long as its newest block does.
        assert not window.expired(1, 4, 5)

    def test_sliding_rejects_empty_window(self):
        with pytest.raises(ValueError, match="at least one block"):
            SlidingCountWindow(0)

    def test_decay_halves_per_half_life(self):
        policy = ExponentialDecay(2.0)
        assert policy.decay(0.0, 2.0) == pytest.approx(0.5)
        assert policy.decay(0.0, 4.0) == pytest.approx(0.25)
        assert policy.decay(3.0, 3.0) == pytest.approx(1.0)

    def test_decay_is_multiplicative_over_intermediate_stamps(self):
        policy = ExponentialDecay(3.0)
        assert policy.decay(0.0, 7.0) == pytest.approx(
            policy.decay(0.0, 4.0) * policy.decay(4.0, 7.0)
        )

    def test_decay_rejects_non_positive_half_life(self):
        with pytest.raises(ValueError, match="positive"):
            ExponentialDecay(0.0)

    def test_tree_requires_a_policy(self):
        with pytest.raises(ValueError, match="requires a window policy"):
            WindowedMergeReduceTree(
                sampler=UniformSampling(seed=0), coreset_size=10, seed=0
            )

    def test_expiring_and_merging_policy_rejected(self):
        class Broken(WindowPolicy):
            name = "broken"
            expires = True
            merges = True

        with pytest.raises(ValueError, match="expires and merges"):
            WindowedMergeReduceTree(
                sampler=UniformSampling(seed=0),
                coreset_size=10,
                seed=0,
                window=Broken(),
            )


class TestDriftDetector:
    def test_first_observation_anchors_without_firing(self):
        detector = DriftDetector(threshold=0.1)
        assert not detector.observe(np.zeros(3), 1.0)

    def test_fires_on_large_excursion_and_reanchors(self):
        detector = DriftDetector(threshold=0.5)
        assert not detector.observe(np.zeros(2), 1.0)
        assert detector.observe(np.array([1.0, 0.0]), 1.0)
        # Re-anchored at (1, 0): a nearby mean must not fire again.
        assert not detector.observe(np.array([1.1, 0.0]), 1.0)

    def test_degenerate_scale_never_fires(self):
        detector = DriftDetector(threshold=0.1)
        assert not detector.observe(np.zeros(2), 0.0)
        assert not detector.observe(np.full(2, 100.0), 0.0)

    def test_threshold_validated(self):
        with pytest.raises(ValueError, match="positive"):
            DriftDetector(threshold=0.0)


class TestOracleEquivalence:
    """The tree's window bookkeeping must match a from-scratch recompute."""

    @pytest.mark.parametrize("spawn_seeds", [False, True])
    @pytest.mark.parametrize("block_size", [40, 75])
    @pytest.mark.parametrize("kind", ["sliding", "decay"])
    def test_live_blocks_match_oracle_after_every_block(
        self, blobs, kind, block_size, spawn_seeds
    ):
        tree = WindowedMergeReduceTree(
            sampler=UniformSampling(seed=0),
            coreset_size=50,
            seed=0,
            window=_policy(kind),
            spawn_seeds=spawn_seeds,
        )
        oracle = _oracle(kind)
        for points, weights in DataStream(points=blobs[:600], block_size=block_size):
            tree.add_block(points, weights)
            oracle.add_block(points, weights)
            live = sorted(
                index
                for start, stop in tree.live_ranges()
                for index in range(start, stop)
            )
            assert live == oracle.live_indices()
        assert tree.blocks_seen == oracle.blocks_seen
        assert tree.blocks_expired == oracle.blocks_seen - len(oracle.live_indices())

    @pytest.mark.parametrize("spawn_seeds", [False, True])
    @pytest.mark.parametrize("block_size", [30, 50])
    def test_sliding_lossless_multiset_exact(self, blobs, block_size, spawn_seeds):
        # coreset_size >= window capacity: nothing is ever resampled, so the
        # tree must retain *exactly* the oracle's window multiset.
        window = SlidingCountWindow(4)
        tree = WindowedMergeReduceTree(
            sampler=UniformSampling(seed=0),
            coreset_size=4 * block_size,
            seed=0,
            window=window,
            spawn_seeds=spawn_seeds,
        )
        oracle = NaiveWindowReference(window_blocks=4)
        for points, weights in DataStream(points=blobs[:560], block_size=block_size):
            tree.add_block(points, weights)
            oracle.add_block(points, weights)
        final = tree.query()
        expected_points, expected_weights = oracle.window_points()
        assert final.size == expected_points.shape[0]
        np.testing.assert_array_equal(
            _sorted_rows(final.points), _sorted_rows(expected_points)
        )
        np.testing.assert_array_equal(final.weights, expected_weights)

    @pytest.mark.parametrize("spawn_seeds", [False, True])
    @pytest.mark.parametrize("half_life", [2.0, 8.0])
    def test_decay_lossless_weights_match_single_step_oracle(
        self, blobs, half_life, spawn_seeds
    ):
        # Nothing expires and nothing is resampled: the telescoped per-fold
        # factors must equal the oracle's single-step factors to rounding.
        n, block_size = 400, 50
        tree = WindowedMergeReduceTree(
            sampler=UniformSampling(seed=0),
            coreset_size=n,
            seed=0,
            window=ExponentialDecay(half_life),
            spawn_seeds=spawn_seeds,
        )
        oracle = NaiveWindowReference(half_life=half_life)
        for points, weights in DataStream(points=blobs[:n], block_size=block_size):
            tree.add_block(points, weights)
            oracle.add_block(points, weights)
        final = tree.query()
        expected_points, expected_weights = oracle.window_points()
        assert final.size == n
        order_tree = np.lexsort(final.points.T)
        order_oracle = np.lexsort(expected_points.T)
        np.testing.assert_array_equal(
            final.points[order_tree], expected_points[order_oracle]
        )
        np.testing.assert_allclose(
            final.weights[order_tree], expected_weights[order_oracle], rtol=1e-12
        )

    def test_explicit_timestamps_drive_decay(self, blobs):
        # Stamps 0, 3, 6, ... with half-life 3: each step halves again.
        half_life = 3.0
        tree = WindowedMergeReduceTree(
            sampler=UniformSampling(seed=0),
            coreset_size=300,
            seed=0,
            window=ExponentialDecay(half_life),
        )
        oracle = NaiveWindowReference(half_life=half_life)
        blocks = list(DataStream(points=blobs[:300], block_size=60))
        for index, (points, weights) in enumerate(blocks):
            tree.add_block(points, weights, timestamp=3.0 * index)
            oracle.add_block(points, weights, timestamp=3.0 * index)
        final = tree.query()
        _, expected_weights = oracle.window_points()
        order = np.lexsort(final.points.T)
        np.testing.assert_allclose(
            np.sort(final.weights), np.sort(expected_weights), rtol=1e-12
        )
        # The oldest block has faded by 0.5 ** (len - 1).
        assert final.weights.min() == pytest.approx(
            0.5 ** (len(blocks) - 1), rel=1e-9
        )
        assert order.shape[0] == final.size

    def test_decreasing_timestamps_rejected_by_tree_and_oracle(self, blobs):
        tree = WindowedMergeReduceTree(
            sampler=UniformSampling(seed=0),
            coreset_size=50,
            seed=0,
            window=ExponentialDecay(2.0),
        )
        oracle = NaiveWindowReference(half_life=2.0)
        tree.add_block(blobs[:40], timestamp=5.0)
        oracle.add_block(blobs[:40], timestamp=5.0)
        with pytest.raises(ValueError, match="non-decreasing"):
            tree.add_block(blobs[40:80], timestamp=4.0)
        with pytest.raises(ValueError, match="non-decreasing"):
            oracle.add_block(blobs[40:80], timestamp=4.0)

    @pytest.mark.parametrize("kind", ["sliding", "decay"])
    def test_distortion_parity_with_direct_window_compression(self, blobs, kind):
        # A real compression (window smaller than the data, m smaller than
        # the window): the tree's coreset must cluster the live window about
        # as well as one direct compression of the oracle's recompute.
        block_size, m, k = 150, 120, 6
        gaps = []
        for seed in range(3):
            tree = WindowedMergeReduceTree(
                sampler=SensitivitySampling(k=k, seed=seed),
                coreset_size=m,
                seed=seed,
                window=_policy(kind),
            )
            oracle = _oracle(kind)
            for points, weights in DataStream(points=blobs, block_size=block_size):
                tree.add_block(points, weights)
                oracle.add_block(points, weights)
            window_points, window_weights = oracle.window_points()
            streamed = coreset_distortion(
                window_points,
                tree.finalize(),
                k=k,
                weights=window_weights,
                seed=seed + 100,
            )
            direct = coreset_distortion(
                window_points,
                oracle.compress(SensitivitySampling(k=k, seed=seed), m, seed=seed),
                k=k,
                weights=window_weights,
                seed=seed + 100,
            )
            assert streamed < 2.0
            assert direct < 2.0
            gaps.append(streamed - direct)
        assert abs(float(np.mean(gaps))) < 0.15


class TestWindowedTreeBehaviour:
    def test_sliding_bucket_count_bounded_by_window(self, blobs):
        window = SlidingCountWindow(5)
        tree = WindowedMergeReduceTree(
            sampler=UniformSampling(seed=0), coreset_size=40, seed=0, window=window
        )
        for points, weights in DataStream(points=blobs, block_size=100):
            tree.add_block(points, weights)
            assert tree.buckets_live <= window.blocks
        assert tree.buckets_live == window.blocks

    def test_decay_bucket_count_logarithmic(self, blobs):
        tree = WindowedMergeReduceTree(
            sampler=UniformSampling(seed=0),
            coreset_size=40,
            seed=0,
            window=ExponentialDecay(4.0),
        )
        for points, weights in DataStream(points=blobs, block_size=50):
            tree.add_block(points, weights)
            # Binary counter: one bucket per set bit of blocks_seen.
            assert tree.buckets_live == bin(tree.blocks_seen).count("1")

    def test_query_is_non_destructive(self, blobs):
        tree = WindowedMergeReduceTree(
            sampler=UniformSampling(seed=0),
            coreset_size=60,
            seed=0,
            window=SlidingCountWindow(3),
        )
        mid_results = []
        for points, weights in DataStream(points=blobs[:900], block_size=100):
            tree.add_block(points, weights)
            before = tree.live_ranges()
            mid_results.append(tree.query())
            assert tree.live_ranges() == before
        assert all(coreset.size <= 60 for coreset in mid_results)
        assert tree.blocks_seen == 9
        final = tree.finalize()
        assert final.method == "windowed_merge_reduce[sliding][uniform]"

    def test_empty_window_query_raises(self):
        tree = WindowedMergeReduceTree(
            sampler=UniformSampling(seed=0),
            coreset_size=10,
            seed=0,
            window=SlidingCountWindow(2),
        )
        with pytest.raises(ValueError, match="window is empty"):
            tree.query()

    @pytest.mark.parametrize("kind", ["sliding", "decay"])
    def test_drift_detector_fires_exactly_at_the_mixture_shift(self, kind):
        dataset = drifting_mixture(
            n=1600, d=6, n_clusters=4, drift_at=0.5, shift=2.0, seed=0
        )
        block_size = 100
        expected = dataset.parameters["drift_row"] // block_size
        tree = WindowedMergeReduceTree(
            sampler=UniformSampling(seed=0),
            coreset_size=80,
            seed=0,
            window=_policy(kind),
            drift_threshold=0.25,
        )
        fired_at = []
        stream = DataStream(points=dataset.points, block_size=block_size)
        for index, (points, weights) in enumerate(stream):
            before = tree.drift_events
            tree.add_block(points, weights)
            if tree.drift_events > before:
                fired_at.append(index)
        assert fired_at == [expected]
        assert tree.last_drift_block == expected

    def test_no_drift_events_on_a_stationary_stream(self, blobs):
        # `blobs` arrives in cluster order, so its block means genuinely
        # move; a stationary stream is the one that must stay silent.
        stationary = np.random.default_rng(5).normal(size=(1200, 6))
        tree = WindowedMergeReduceTree(
            sampler=UniformSampling(seed=0),
            coreset_size=60,
            seed=0,
            window=SlidingCountWindow(4),
            drift_threshold=0.25,
        )
        for points, weights in DataStream(points=stationary, block_size=150):
            tree.add_block(points, weights)
        assert tree.drift_events == 0
        assert tree.last_drift_block == -1


class TestWindowedPipeline:
    @pytest.mark.parametrize("kind", ["sliding", "decay"])
    def test_sync_and_async_executors_bit_identical(self, blobs, kind):
        # Host-walk determinism: every stochastic input is fixed in arrival
        # order, so the overlapped async pipeline must reproduce the
        # spawn-seeded sync pipeline byte for byte.
        def run(executor, prefetch):
            pipeline = StreamingCoresetPipeline(
                sampler=SensitivitySampling(k=5, seed=0),
                coreset_size=150,
                seed=3,
                window=_policy(kind),
                executor=executor,
                prefetch_batches=prefetch,
            )
            return pipeline.run(DataStream(points=blobs, block_size=150))

        sync = run("serial", None)
        for coreset in (run("thread", 2), run("thread", 4)):
            np.testing.assert_array_equal(sync.points, coreset.points)
            np.testing.assert_array_equal(sync.weights, coreset.weights)

    @pytest.mark.parametrize("kind", ["sliding", "decay"])
    def test_statistics_and_diagnostics_carry_window_counters(self, blobs, kind):
        pipeline = StreamingCoresetPipeline(
            sampler=UniformSampling(seed=0),
            coreset_size=80,
            seed=0,
            window=_policy(kind),
        )
        coreset, statistics = pipeline.run_with_statistics(
            DataStream(points=blobs, block_size=150)
        )
        assert coreset.size <= 80
        expected_expired = (10 - 4) * 1 if kind == "sliding" else 0
        # 10 blocks of 150 points: a 4-block sliding window retires 6.
        assert statistics["blocks_expired"] == expected_expired
        assert statistics["drift_events"] == 0
        assert pipeline.last_diagnostics["blocks_expired"] == expected_expired
        assert "drift_events" in pipeline.last_diagnostics

    def test_stream_dataset_window_kwarg(self, blobs):
        coreset = stream_dataset(
            blobs,
            UniformSampling(seed=0),
            coreset_size=100,
            n_blocks=8,
            seed=0,
            window=SlidingCountWindow(3),
        )
        assert coreset.size <= 100
        assert coreset.method == "windowed_merge_reduce[sliding][uniform]"

    def test_windowed_total_weight_tracks_window_not_stream(self, blobs):
        # 1500 points in 10 blocks, window of 4: the coreset summarises the
        # last 600 points, so its weight must be near 600, not 1500.
        pipeline = StreamingCoresetPipeline(
            sampler=SensitivitySampling(k=5, seed=0),
            coreset_size=120,
            seed=0,
            window=SlidingCountWindow(4),
        )
        coreset = pipeline.run(DataStream(points=blobs, block_size=150))
        assert coreset.total_weight == pytest.approx(600, rel=0.35)

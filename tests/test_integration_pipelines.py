"""Integration tests: end-to-end pipelines and the paper's qualitative claims.

These tests cross module boundaries on purpose: dataset generator → sampler →
streaming / distributed composition → distortion metric → downstream solver,
checking the *qualitative* results the paper reports (who fails where), not
just that the plumbing runs.
"""

import numpy as np
import pytest

from repro.clustering.lloyd import kmeans
from repro.core import (
    FastCoreset,
    LightweightCoreset,
    SensitivitySampling,
    UniformSampling,
    WelterweightCoreset,
)
from repro.data.synthetic import c_outlier_dataset, gaussian_mixture, geometric_dataset
from repro.distributed import MapReduceCoresetAggregator
from repro.evaluation import coreset_distortion, solution_cost_on_dataset
from repro.experiments.cluster_capture import small_central_cluster_dataset
from repro.streaming import DataStream, StreamingCoresetPipeline


class TestSpeedAccuracyTradeoff:
    """The paper's core qualitative claim: faster samplers are more brittle."""

    def test_uniform_fails_on_c_outlier_fast_coreset_does_not(self):
        failures_uniform = 0
        failures_fast = 0
        for seed in range(6):
            data = c_outlier_dataset(n=3000, d=8, n_outliers=8, outlier_distance=800.0, seed=seed).points
            uniform = UniformSampling(seed=seed).sample(data, 90)
            fast = FastCoreset(k=4, seed=seed).sample(data, 90)
            if coreset_distortion(data, uniform, k=4, seed=seed + 50) > 5.0:
                failures_uniform += 1
            if coreset_distortion(data, fast, k=4, seed=seed + 50) > 5.0:
                failures_fast += 1
        assert failures_uniform >= 1, "uniform sampling should fail on some c-outlier runs"
        assert failures_fast == 0, "Fast-Coresets must never fail on c-outlier"

    def test_lightweight_misses_central_cluster_more_often_than_sensitivity(self):
        dataset = small_central_cluster_dataset(n=12_000, small_cluster_size=150, seed=0)
        small_members = set(np.flatnonzero(dataset.labels == dataset.labels.max()).tolist())
        lightweight_hits, sensitivity_hits = 0, 0
        for seed in range(8):
            light = LightweightCoreset(seed=seed).sample(dataset.points, 100)
            sens = SensitivitySampling(k=9, seed=seed).sample(dataset.points, 100)
            lightweight_hits += sum(1 for i in light.indices.tolist() if i in small_members)
            sensitivity_hits += sum(1 for i in sens.indices.tolist() if i in small_members)
        assert sensitivity_hits > lightweight_hits

    def test_all_sensitivity_based_methods_accurate_on_balanced_data(self, blobs):
        for sampler in (
            LightweightCoreset(seed=0),
            WelterweightCoreset(k=6, seed=0),
            SensitivitySampling(k=6, seed=0),
            FastCoreset(k=6, seed=0),
        ):
            coreset = sampler.sample(blobs, 300)
            assert coreset_distortion(blobs, coreset, k=6, seed=1) < 1.6, sampler.name

    def test_imbalance_hurts_lightweight_more_than_fast_coreset(self):
        distortion_light, distortion_fast = [], []
        for seed in range(4):
            data = gaussian_mixture(n=6000, d=10, n_clusters=12, gamma=4.5, seed=seed).points
            light = LightweightCoreset(seed=seed).sample(data, 240)
            fast = FastCoreset(k=12, seed=seed).sample(data, 240)
            distortion_light.append(coreset_distortion(data, light, k=12, seed=seed + 20))
            distortion_fast.append(coreset_distortion(data, fast, k=12, seed=seed + 20))
        assert np.mean(distortion_fast) <= np.mean(distortion_light) + 0.5


class TestStreamingPipelineEndToEnd:
    def test_every_sampler_survives_composition(self, blobs):
        for sampler in (
            UniformSampling(seed=0),
            LightweightCoreset(seed=0),
            WelterweightCoreset(k=6, seed=0),
            FastCoreset(k=6, seed=0),
        ):
            pipeline = StreamingCoresetPipeline(sampler=sampler, coreset_size=250, seed=0)
            coreset = pipeline.run(DataStream(points=blobs, block_size=300))
            assert coreset.size <= 250
            assert coreset_distortion(blobs, coreset, k=6, seed=1) < 3.0, sampler.name

    def test_streaming_not_much_worse_than_static(self, blobs):
        sampler = SensitivitySampling(k=6, seed=0)
        static = sampler.sample(blobs, 300)
        streaming = StreamingCoresetPipeline(sampler=sampler, coreset_size=300, seed=0).run(
            DataStream(points=blobs, block_size=250)
        )
        static_distortion = coreset_distortion(blobs, static, k=6, seed=1)
        streaming_distortion = coreset_distortion(blobs, streaming, k=6, seed=1)
        assert streaming_distortion < static_distortion * 2.5


class TestDistributedPipelineEndToEnd:
    def test_mapreduce_matches_single_machine_quality(self, blobs):
        sampler = SensitivitySampling(k=6, seed=0)
        single = sampler.sample(blobs, 320)
        distributed = MapReduceCoresetAggregator(
            sampler=sampler, n_workers=4, coreset_size_per_worker=80, seed=0
        ).run(blobs)
        single_distortion = coreset_distortion(blobs, single, k=6, seed=1)
        distributed_distortion = coreset_distortion(blobs, distributed.coreset, k=6, seed=1)
        assert distributed_distortion < single_distortion * 2.0


class TestDownstreamClustering:
    def test_coreset_solution_close_to_full_data_solution(self, blobs):
        full = kmeans(blobs, 6, seed=0)
        coreset = FastCoreset(k=6, seed=0).sample(blobs, 400)
        coreset_cost = solution_cost_on_dataset(blobs, coreset, 6, seed=0)
        assert coreset_cost <= full.cost * 1.5

    def test_geometric_dataset_downstream(self):
        data = geometric_dataset(n=4000, d=12, k=8, seed=0).points
        coreset = SensitivitySampling(k=8, seed=0).sample(data, 320)
        cost = solution_cost_on_dataset(data, coreset, 8, seed=1)
        full = kmeans(data, 8, seed=1)
        assert cost <= max(full.cost * 2.0, full.cost + 1e-6)

"""Unit tests for repro.distributed.mapreduce."""

import numpy as np
import pytest

from repro.core import SensitivitySampling, UniformSampling
from repro.distributed import MapReduceCoresetAggregator
from repro.evaluation import coreset_distortion
from repro.parallel import ProcessExecutor, SerialExecutor, ThreadExecutor


class TestMapReduceAggregator:
    @pytest.fixture(scope="class")
    def aggregator(self):
        return MapReduceCoresetAggregator(
            sampler=SensitivitySampling(k=6, seed=0),
            n_workers=4,
            coreset_size_per_worker=80,
            seed=0,
        )

    def test_shards_partition_the_data(self, aggregator, blobs):
        generator = np.random.default_rng(0)
        shards = aggregator.partition(blobs.shape[0], generator)
        combined = np.concatenate(shards)
        assert sorted(combined.tolist()) == list(range(blobs.shape[0]))

    def test_union_size_is_sum_of_messages(self, aggregator, blobs):
        result = aggregator.run(blobs)
        assert result.coreset.size == sum(result.message_sizes)
        assert len(result.worker_coresets) == 4

    def test_message_sizes_independent_of_shard_sizes(self, blobs):
        # The coreset property the MapReduce discussion relies on: the message
        # size is whatever the worker was asked for, not the shard size.
        aggregator = MapReduceCoresetAggregator(
            sampler=UniformSampling(seed=0),
            n_workers=5,
            coreset_size_per_worker=30,
            seed=1,
        )
        result = aggregator.run(blobs)
        assert all(size == 30 for size in result.message_sizes)

    def test_communication_accounting(self, aggregator, blobs):
        result = aggregator.run(blobs)
        expected = sum(result.message_sizes) * (blobs.shape[1] + 1)
        assert result.communication == expected

    def test_total_weight_preserved(self, aggregator, blobs):
        result = aggregator.run(blobs)
        assert result.coreset.total_weight == pytest.approx(blobs.shape[0], rel=0.3)

    def test_union_is_accurate_coreset(self, aggregator, blobs):
        result = aggregator.run(blobs)
        assert coreset_distortion(blobs, result.coreset, k=6, seed=2) < 2.0

    def test_final_recompression(self, blobs):
        aggregator = MapReduceCoresetAggregator(
            sampler=SensitivitySampling(k=5, seed=0),
            n_workers=4,
            coreset_size_per_worker=100,
            final_coreset_size=150,
            seed=0,
        )
        result = aggregator.run(blobs)
        assert result.coreset.size <= 150

    def test_more_workers_than_points(self):
        points = np.random.default_rng(0).normal(size=(6, 3))
        aggregator = MapReduceCoresetAggregator(
            sampler=UniformSampling(seed=0), n_workers=10, coreset_size_per_worker=2, seed=0
        )
        result = aggregator.run(points)
        assert result.coreset.size >= 1

    def test_weighted_input(self, blobs, rng):
        weights = rng.uniform(0.5, 1.5, size=blobs.shape[0])
        aggregator = MapReduceCoresetAggregator(
            sampler=UniformSampling(seed=0), n_workers=3, coreset_size_per_worker=50, seed=0
        )
        result = aggregator.run(blobs, weights=weights)
        assert result.coreset.total_weight == pytest.approx(weights.sum(), rel=0.2)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MapReduceCoresetAggregator(
                sampler=UniformSampling(), n_workers=0, coreset_size_per_worker=10
            )

    def test_metadata_records_sampler_name(self, aggregator, blobs):
        # Regression: this slot used to hold a meaningless float(0.0).
        result = aggregator.run(blobs)
        assert result.metadata["sampler"] == "sensitivity"
        assert result.metadata["n_workers"] == 4.0


class TestMapReduceExecutorPath:
    @pytest.fixture(scope="class")
    def aggregator(self):
        return MapReduceCoresetAggregator(
            sampler=SensitivitySampling(k=6, seed=0),
            n_workers=4,
            coreset_size_per_worker=80,
            seed=0,
        )

    def test_serial_executor_matches_thread_executor(self, aggregator, blobs):
        serial = aggregator.run(blobs, executor="serial")
        threaded = aggregator.run(blobs, executor=ThreadExecutor(workers=3))
        assert np.array_equal(serial.coreset.points, threaded.coreset.points)
        assert np.array_equal(serial.coreset.weights, threaded.coreset.weights)
        assert serial.shard_sizes == threaded.shard_sizes
        assert serial.communication == threaded.communication

    @pytest.mark.parallel
    def test_serial_executor_matches_process_executor(self, aggregator, blobs):
        serial = aggregator.run(blobs, executor=SerialExecutor())
        process = aggregator.run(blobs, executor=ProcessExecutor(workers=2))
        assert np.array_equal(serial.coreset.points, process.coreset.points)
        assert np.array_equal(serial.coreset.weights, process.coreset.weights)
        assert process.metadata["backend"] == "process"
        assert process.metadata["workers"] == 2.0

    def test_executor_round_keeps_mapreduce_accounting(self, aggregator, blobs):
        result = aggregator.run(blobs, executor="serial")
        assert result.coreset.size == sum(result.message_sizes)
        assert sum(result.shard_sizes) == blobs.shape[0]
        assert result.communication == sum(result.message_sizes) * (blobs.shape[1] + 1)
        assert result.coreset.method == "mapreduce[sensitivity]"
        assert result.metadata["sampler"] == "sensitivity"
        assert len(result.worker_coresets) == 4

    def test_executor_union_is_accurate_coreset(self, aggregator, blobs):
        result = aggregator.run(blobs, executor="serial")
        assert coreset_distortion(blobs, result.coreset, k=6, seed=2) < 2.0

    def test_final_recompression_with_executor(self, blobs):
        aggregator = MapReduceCoresetAggregator(
            sampler=SensitivitySampling(k=5, seed=0),
            n_workers=4,
            coreset_size_per_worker=100,
            final_coreset_size=150,
            seed=0,
        )
        result = aggregator.run(blobs, executor="serial")
        assert result.coreset.size <= 150

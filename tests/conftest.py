"""Shared fixtures for the test suite.

The fixtures keep dataset sizes small (a few thousand points at most) so the
whole suite runs in a couple of minutes while still exercising every code
path of the library.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ExperimentScale
from repro.data.synthetic import (
    benchmark_dataset,
    c_outlier_dataset,
    gaussian_mixture,
    geometric_dataset,
)


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    """A session-wide generator for tests that need ad-hoc randomness."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def blobs() -> np.ndarray:
    """A small, well-separated Gaussian mixture (the easy case)."""
    return gaussian_mixture(n=1500, d=8, n_clusters=6, gamma=0.0, seed=7).points


@pytest.fixture(scope="session")
def imbalanced_blobs() -> np.ndarray:
    """A Gaussian mixture with strong class imbalance (gamma = 4)."""
    return gaussian_mixture(n=1500, d=8, n_clusters=6, gamma=4.0, seed=11).points


@pytest.fixture(scope="session")
def outlier_data() -> np.ndarray:
    """The c-outlier dataset: a tiny far-away cluster uniform sampling misses."""
    return c_outlier_dataset(n=2000, d=6, n_outliers=12, outlier_distance=500.0, seed=3).points


@pytest.fixture(scope="session")
def geometric_data() -> np.ndarray:
    """The geometric dataset: simplex vertices with decaying masses."""
    return geometric_dataset(n=2000, d=12, k=10, c=50, seed=5).points


@pytest.fixture(scope="session")
def benchmark_data() -> np.ndarray:
    """The benchmark dataset of [57] at a small scale."""
    return benchmark_dataset(k=12, d=10, n=1800, seed=9).points


@pytest.fixture(scope="session")
def tiny_scale() -> ExperimentScale:
    """An experiment scale small enough for integration tests of the harnesses."""
    return ExperimentScale(
        synthetic_n=1200,
        synthetic_d=8,
        k_small=8,
        k_large=10,
        m_scalar=10,
        repetitions=1,
        dataset_fraction=0.01,
    )

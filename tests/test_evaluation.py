"""Unit tests for repro.evaluation (distortion metric, solution quality, tables)."""

import numpy as np
import pytest

from repro.clustering.cost import clustering_cost
from repro.core import SensitivitySampling, UniformSampling
from repro.core.coreset import Coreset, trivial_coreset
from repro.evaluation import (
    ExperimentRow,
    coreset_distortion,
    distortion_of_solution,
    format_table,
    rows_to_markdown,
    solution_cost_on_dataset,
)
from repro.evaluation.solution_quality import shared_initialization
from repro.evaluation.tables import group_rows


class TestDistortionOfSolution:
    def test_exact_coreset_has_distortion_one(self, blobs, rng):
        coreset = trivial_coreset(blobs)
        centers = blobs[rng.choice(blobs.shape[0], size=4, replace=False)]
        report = distortion_of_solution(blobs, coreset, centers)
        assert report.distortion == pytest.approx(1.0)
        assert report.cost_on_full == pytest.approx(report.cost_on_coreset)

    def test_distortion_at_least_one(self, blobs, rng):
        coreset = UniformSampling(seed=0).sample(blobs, 100)
        centers = blobs[rng.choice(blobs.shape[0], size=4, replace=False)]
        assert distortion_of_solution(blobs, coreset, centers).distortion >= 1.0

    def test_bad_compression_detected(self, outlier_data):
        # A compression that drops the outliers entirely: candidate solutions
        # computed on it ignore the far-away cluster, producing huge distortion.
        inliers_only = outlier_data[outlier_data[:, 0] < 250.0][:100]
        bad = Coreset(
            points=inliers_only,
            weights=np.full(100, outlier_data.shape[0] / 100),
            method="bad",
        )
        centers = inliers_only[:4]
        report = distortion_of_solution(outlier_data, bad, centers)
        assert report.distortion > 10.0

    def test_zero_cost_on_both_sides(self):
        points = np.zeros((10, 2))
        coreset = trivial_coreset(points)
        report = distortion_of_solution(points, coreset, np.zeros((1, 2)))
        assert report.distortion == 1.0

    def test_infinite_distortion_when_only_one_side_zero(self):
        points = np.concatenate([np.zeros((10, 2)), np.ones((1, 2))])
        coreset = trivial_coreset(np.zeros((5, 2)))
        report = distortion_of_solution(points, coreset, np.zeros((1, 2)))
        assert report.distortion == float("inf")


class TestCoresetDistortion:
    def test_good_coreset_low_distortion(self, blobs):
        coreset = SensitivitySampling(k=6, seed=0).sample(blobs, 300)
        assert coreset_distortion(blobs, coreset, k=6, seed=1) < 1.5

    def test_kmedian_variant(self, blobs):
        coreset = SensitivitySampling(k=6, z=1, seed=0).sample(blobs, 300)
        assert coreset_distortion(blobs, coreset, k=6, z=1, seed=1) < 1.5

    def test_k_larger_than_coreset_handled(self, blobs):
        coreset = UniformSampling(seed=0).sample(blobs, 10)
        value = coreset_distortion(blobs, coreset, k=50, seed=1)
        assert value >= 1.0


class TestSolutionQuality:
    def test_shared_initialization_shape(self, blobs):
        centers = shared_initialization(blobs, 5, seed=0)
        assert centers.shape == (5, blobs.shape[1])

    def test_cost_from_good_coreset_close_to_full_data_cost(self, blobs):
        coreset = SensitivitySampling(k=6, seed=0).sample(blobs, 400)
        initialization = shared_initialization(blobs, 6, seed=0)
        coreset_cost = solution_cost_on_dataset(
            blobs, coreset, 6, initial_centers=initialization, seed=1
        )
        full_solution = solution_cost_on_dataset(
            blobs, trivial_coreset(blobs), 6, initial_centers=initialization, seed=1
        )
        assert coreset_cost <= full_solution * 2.0

    def test_kmedian_mode(self, blobs):
        coreset = SensitivitySampling(k=5, z=1, seed=0).sample(blobs, 300)
        cost = solution_cost_on_dataset(blobs, coreset, 5, z=1, seed=1)
        assert cost > 0

    def test_cost_is_evaluated_on_full_dataset(self, blobs):
        coreset = SensitivitySampling(k=5, seed=0).sample(blobs, 200)
        cost = solution_cost_on_dataset(blobs, coreset, 5, seed=1)
        # The cost on the full dataset must exceed the optimal coreset cost of
        # zero and be in the same ballpark as clustering the full data.
        assert cost > 0
        assert np.isfinite(cost)


class TestTables:
    @pytest.fixture
    def rows(self):
        return [
            ExperimentRow("t", "adult", "uniform", {"distortion": 1.23, "runtime": 0.5}),
            ExperimentRow("t", "adult", "fast_coreset", {"distortion": 1.05, "runtime": 2.5}),
            ExperimentRow("t", "taxi", "uniform", {"distortion": 600.0, "runtime": 0.1}),
        ]

    def test_format_table_contains_all_rows(self, rows):
        text = format_table(rows, value_names=["distortion", "runtime"])
        assert "adult" in text and "taxi" in text
        assert "fast_coreset" in text
        assert "600" in text

    def test_markdown_table_shape(self, rows):
        markdown = rows_to_markdown(rows, value_names=["distortion"])
        lines = markdown.splitlines()
        assert lines[0].startswith("| dataset")
        assert len(lines) == 2 + len(rows)

    def test_missing_value_rendered_as_nan(self, rows):
        text = format_table(rows, value_names=["nonexistent"])
        assert "nan" in text

    def test_group_rows(self, rows):
        by_dataset = group_rows(rows, "dataset")
        assert set(by_dataset) == {"adult", "taxi"}
        assert len(by_dataset["adult"]) == 2

    def test_experiment_row_value_accessor(self, rows):
        assert rows[0].value("distortion") == pytest.approx(1.23)

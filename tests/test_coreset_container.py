"""Unit tests for repro.core.coreset (the Coreset container and composition)."""

import numpy as np
import pytest

from repro.clustering.cost import clustering_cost
from repro.core.coreset import Coreset, merge_coresets, trivial_coreset


class TestCoresetBasics:
    def test_size_dimension_and_len(self):
        coreset = Coreset(points=np.zeros((5, 3)), weights=np.ones(5))
        assert coreset.size == 5
        assert coreset.dimension == 3
        assert len(coreset) == 5

    def test_total_weight(self):
        coreset = Coreset(points=np.zeros((4, 2)), weights=np.array([1.0, 2.0, 3.0, 4.0]))
        assert coreset.total_weight == pytest.approx(10.0)

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            Coreset(points=np.zeros((2, 2)), weights=np.array([1.0, -1.0]))

    def test_mismatched_weights_rejected(self):
        with pytest.raises(ValueError):
            Coreset(points=np.zeros((3, 2)), weights=np.ones(2))

    def test_mismatched_indices_rejected(self):
        with pytest.raises(ValueError):
            Coreset(points=np.zeros((3, 2)), weights=np.ones(3), indices=np.arange(2))

    def test_cost_matches_weighted_clustering_cost(self, rng):
        points = rng.normal(size=(30, 4))
        weights = rng.uniform(0.5, 2.0, size=30)
        coreset = Coreset(points=points, weights=weights)
        centers = rng.normal(size=(3, 4))
        assert coreset.cost(centers) == pytest.approx(
            clustering_cost(points, centers, weights=weights)
        )

    def test_subset(self, rng):
        coreset = Coreset(points=rng.normal(size=(10, 2)), weights=np.arange(1.0, 11.0), indices=np.arange(10))
        subset = coreset.subset(np.array([0, 2, 4]))
        assert subset.size == 3
        np.testing.assert_allclose(subset.weights, [1.0, 3.0, 5.0])
        np.testing.assert_array_equal(subset.indices, [0, 2, 4])

    def test_with_metadata_does_not_mutate(self):
        coreset = Coreset(points=np.zeros((2, 2)), weights=np.ones(2), metadata={"a": 1.0})
        updated = coreset.with_metadata(b=2.0)
        assert "b" not in coreset.metadata
        assert updated.metadata == {"a": 1.0, "b": 2.0}


class TestMergeCoresets:
    def test_concatenates_points_and_weights(self, rng):
        first = Coreset(points=rng.normal(size=(4, 3)), weights=np.ones(4), method="uniform")
        second = Coreset(points=rng.normal(size=(6, 3)), weights=2 * np.ones(6), method="sensitivity")
        merged = merge_coresets([first, second])
        assert merged.size == 10
        assert merged.total_weight == pytest.approx(4 + 12)
        assert "uniform" in merged.method and "sensitivity" in merged.method

    def test_composition_preserves_cost_estimates(self, rng):
        # cost estimate of the union equals the sum of the parts' estimates.
        points_a = rng.normal(size=(20, 3))
        points_b = rng.normal(size=(30, 3)) + 5
        coreset_a = trivial_coreset(points_a)
        coreset_b = trivial_coreset(points_b)
        merged = merge_coresets([coreset_a, coreset_b])
        centers = rng.normal(size=(4, 3))
        assert merged.cost(centers) == pytest.approx(
            coreset_a.cost(centers) + coreset_b.cost(centers)
        )

    def test_empty_list_raises(self):
        with pytest.raises(ValueError):
            merge_coresets([])

    def test_dimension_mismatch_raises(self):
        a = Coreset(points=np.zeros((2, 2)), weights=np.ones(2))
        b = Coreset(points=np.zeros((2, 3)), weights=np.ones(2))
        with pytest.raises(ValueError):
            merge_coresets([a, b])

    def test_explicit_method_name(self):
        a = Coreset(points=np.zeros((2, 2)), weights=np.ones(2))
        merged = merge_coresets([a, a], method="custom")
        assert merged.method == "custom"


class TestTrivialCoreset:
    def test_is_exact(self, rng):
        points = rng.normal(size=(25, 3))
        coreset = trivial_coreset(points)
        centers = rng.normal(size=(2, 3))
        assert coreset.cost(centers) == pytest.approx(clustering_cost(points, centers))
        assert coreset.total_weight == pytest.approx(25.0)

    def test_respects_input_weights(self, rng):
        points = rng.normal(size=(10, 2))
        weights = rng.uniform(1, 3, size=10)
        coreset = trivial_coreset(points, weights)
        assert coreset.total_weight == pytest.approx(weights.sum())

#!/usr/bin/env python3
"""Streaming compression of a taxi-style workload with merge-&-reduce.

The scenario the paper's Section 5.4 targets: location data arrives in
blocks (think: a day of taxi pickups at a time) and the system must maintain
a compression of everything seen so far whose size never grows.  The example
compares three streaming strategies on a Taxi-like dataset — the one real
dataset where uniform sampling fails catastrophically:

* uniform sampling under merge-&-reduce,
* Fast-Coresets under merge-&-reduce,
* BICO (the BIRCH-based streaming competitor).

Run with::

    python examples/streaming_pipeline.py
"""

from __future__ import annotations

import time

from repro.core import FastCoreset, UniformSampling
from repro.data import taxi_like
from repro.evaluation import coreset_distortion
from repro.streaming import BicoCoreset, DataStream, StreamingCoresetPipeline


def main() -> None:
    print("Generating a Taxi-like dataset (2-D pickup locations, clusters of wildly varying size) ...")
    dataset = taxi_like(fraction=0.05, seed=0)
    points = dataset.points
    k = 50
    coreset_size = 40 * k
    n_blocks = 20
    print(f"n={dataset.n} points, streaming in {n_blocks} blocks, maintaining {coreset_size} weighted points\n")

    stream = DataStream.with_block_count(points, n_blocks)

    results = {}
    for name, pipeline in (
        ("uniform + merge-&-reduce", StreamingCoresetPipeline(UniformSampling(seed=1), coreset_size, seed=1)),
        ("fast_coreset + merge-&-reduce", StreamingCoresetPipeline(FastCoreset(k=k, seed=2), coreset_size, seed=2)),
    ):
        start = time.perf_counter()
        coreset, statistics = pipeline.run_with_statistics(stream)
        elapsed = time.perf_counter() - start
        distortion = coreset_distortion(points, coreset, k=k, seed=7)
        results[name] = (elapsed, distortion, coreset.size)
        print(
            f"{name:32s} time={elapsed:7.2f}s distortion={distortion:10.3f} "
            f"size={coreset.size:5d} reductions={int(statistics['reductions'])}"
        )

    # BICO consumes the stream directly through its clustering-feature tree.
    bico = BicoCoreset(coreset_size=coreset_size, seed=3)
    start = time.perf_counter()
    for block, weights in stream:
        bico.insert_block(block, weights)
    coreset = bico.to_coreset()
    elapsed = time.perf_counter() - start
    distortion = coreset_distortion(points, coreset, k=k, seed=7)
    print(f"{'BICO (CF-tree)':32s} time={elapsed:7.2f}s distortion={distortion:10.3f} size={coreset.size:5d}")

    print(
        "\nTakeaway (matching the paper): the merge-&-reduce composition preserves each sampler's\n"
        "character — uniform sampling stays brittle on Taxi-style data, Fast-Coresets stay accurate —\n"
        "and BICO's compression is a usable quantisation but not a faithful coreset."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: compress a dataset with every sampler and compare quality and speed.

This is the five-minute tour of the library:

1. generate a Gaussian-mixture dataset with imbalanced cluster sizes,
2. compress it with the full spectrum of samplers studied in the paper
   (uniform → lightweight → welterweight → sensitivity → Fast-Coreset),
3. measure each compression's *coreset distortion* (how faithfully it
   represents the full dataset for clustering purposes) and its construction
   time, and
4. run the downstream k-means task on the best compression.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import time

from repro.clustering import kmeans
from repro.core import (
    FastCoreset,
    LightweightCoreset,
    SensitivitySampling,
    UniformSampling,
    WelterweightCoreset,
)
from repro.data import gaussian_mixture
from repro.evaluation import coreset_distortion, solution_cost_on_dataset


def main() -> None:
    n, d, k = 20_000, 20, 25
    coreset_size = 40 * k
    print(f"Generating a Gaussian mixture with n={n}, d={d}, {k} clusters of uneven size ...")
    dataset = gaussian_mixture(n=n, d=d, n_clusters=k, gamma=2.0, seed=0)
    points = dataset.points

    samplers = {
        "uniform": UniformSampling(seed=1),
        "lightweight": LightweightCoreset(seed=2),
        "welterweight (j=log k)": WelterweightCoreset(k=k, seed=3),
        "sensitivity (j=k)": SensitivitySampling(k=k, seed=4),
        "fast_coreset (Algorithm 1)": FastCoreset(k=k, seed=5),
    }

    print(f"\nCompressing {n} points down to {coreset_size} weighted points:\n")
    print(f"{'method':30s} {'time (s)':>10s} {'distortion':>12s} {'total weight':>14s}")
    best_name, best_coreset, best_distortion = None, None, float("inf")
    for name, sampler in samplers.items():
        start = time.perf_counter()
        coreset = sampler.sample(points, coreset_size)
        elapsed = time.perf_counter() - start
        distortion = coreset_distortion(points, coreset, k=k, seed=10)
        print(f"{name:30s} {elapsed:10.3f} {distortion:12.3f} {coreset.total_weight:14.1f}")
        if distortion < best_distortion:
            best_name, best_coreset, best_distortion = name, coreset, distortion

    print(f"\nBest compression: {best_name} (distortion {best_distortion:.3f})")
    print("Running the downstream k-means task on that compression ...")
    downstream_cost = solution_cost_on_dataset(points, best_coreset, k, seed=11)
    full_data_cost = kmeans(points, k, seed=11).cost
    print(f"cost of coreset-derived solution on the full data: {downstream_cost:,.0f}")
    print(f"cost of clustering the full data directly:          {full_data_cost:,.0f}")
    print(f"relative gap: {downstream_cost / full_data_cost - 1.0:+.1%}")


if __name__ == "__main__":
    main()

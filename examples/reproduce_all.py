#!/usr/bin/env python3
"""Run every experiment harness and write a markdown report of the measured results.

This is the one-shot driver behind EXPERIMENTS.md: it executes the harness of
every table and figure at the requested scale and renders the resulting rows
as markdown tables.  Use ``--full`` (or ``REPRO_FULL_SCALE=1``) for
paper-sized instances; the default quick scale finishes in a few minutes.

Run with::

    python examples/reproduce_all.py --output results.md
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.config import ExperimentScale
from repro.evaluation.tables import rows_to_markdown
from repro.experiments import (
    figure1_runtime_vs_k,
    figure3_cluster_capture,
    figure4_kmedian_sweep,
    table1_spread_runtime,
    table2_distortion_ratios,
    table3_dataset_summary,
    table4_sampler_sweep,
    table5_streaming_comparison,
    table6_bico_distortion,
    table7_imbalance_sweep,
    table8_downstream_cost,
    table9_streamkm_distortion,
)


def build_report(scale: ExperimentScale) -> str:
    """Execute every harness and return the markdown report."""
    sections = []

    def add(title: str, rows, value_names) -> None:
        print(f"[{time.strftime('%H:%M:%S')}] finished {title} ({len(rows)} rows)", file=sys.stderr)
        sections.append(f"### {title}\n\n{rows_to_markdown(rows, value_names=value_names)}\n")

    add(
        "Table 1 — Fast-kmeans++ runtime vs spread parameter r",
        table1_spread_runtime(scale=scale, r_values=(10, 20, 30, 40), k=min(50, scale.k_small)),
        ["runtime_mean", "runtime_std"],
    )
    add(
        "Figure 1 — construction runtime vs k",
        figure1_runtime_vs_k(
            scale=scale,
            datasets=("geometric", "gaussian", "adult"),
            k_values=(10, 20, 40, 80) if scale.dataset_fraction < 1.0 else (50, 100, 200, 400),
            repetitions=1,
            m_scalar=5,
        ),
        ["runtime_mean", "slowdown_vs_smallest_k"],
    )
    add(
        "Table 2 — distortion ratio vs sensitivity sampling",
        table2_distortion_ratios(scale=scale, datasets=("adult", "mnist", "star", "taxi", "census")),
        ["ratio", "distortion", "sensitivity_distortion"],
    )
    add(
        "Table 3 — dataset characteristics",
        table3_dataset_summary(scale=scale),
        ["paper_points", "paper_dim", "generated_points", "generated_dim"],
    )
    add(
        "Table 4 — distortion by sampler and dataset",
        table4_sampler_sweep(
            scale=scale,
            datasets=("c_outlier", "geometric", "gaussian", "benchmark", "adult", "star", "taxi"),
            m_scalars=(20, 40) if scale.dataset_fraction < 1.0 else (40, 80),
        ),
        ["distortion_mean", "distortion_var", "runtime_mean"],
    )
    add(
        "Table 5 / Figure 5 — streaming vs static",
        table5_streaming_comparison(scale=scale, datasets=("c_outlier", "gaussian", "adult"), n_blocks=8),
        ["distortion_mean", "distortion_var", "runtime_mean"],
    )
    add(
        "Table 6 — BICO distortion",
        table6_bico_distortion(
            scale=scale,
            datasets=("c_outlier", "gaussian", "adult"),
            streaming_datasets=("gaussian",),
            m_scalars=(20, 40) if scale.dataset_fraction < 1.0 else (40, 80),
            repetitions=1,
        ),
        ["distortion_mean", "distortion_var"],
    )
    add(
        "Table 7 — imbalance gamma vs candidate-solution size j",
        table7_imbalance_sweep(scale=scale),
        ["distortion_mean", "distortion_var"],
    )
    add(
        "Table 8 — downstream k-means cost from each sampler's coreset",
        table8_downstream_cost(scale=scale, datasets=("mnist", "adult", "census", "taxi")),
        ["cost_on_full"],
    )
    add(
        "Table 9 — StreamKM++ distortion on artificial datasets",
        table9_streamkm_distortion(scale=scale),
        ["distortion_mean", "distortion_var"],
    )
    add(
        "Figure 3 — capture of a small central cluster",
        figure3_cluster_capture(scale=scale, repetitions=10),
        ["capture_rate", "mean_points_in_small_cluster"],
    )
    add(
        "Figure 4 — k-median distortions",
        figure4_kmedian_sweep(scale=scale, datasets=("c_outlier", "gaussian", "adult"), m_scalars=(20, 40)),
        ["distortion_mean", "runtime_mean"],
    )
    return "\n".join(sections)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default=None, help="write the markdown report to this file")
    parser.add_argument("--full", action="store_true", help="use paper-sized instances")
    arguments = parser.parse_args()
    scale = ExperimentScale.paper() if arguments.full else ExperimentScale.from_environment()
    report = build_report(scale)
    if arguments.output:
        with open(arguments.output, "w", encoding="utf-8") as handle:
            handle.write(report)
        print(f"report written to {arguments.output}", file=sys.stderr)
    else:
        print(report)


if __name__ == "__main__":
    main()

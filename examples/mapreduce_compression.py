#!/usr/bin/env python3
"""Multi-core sharded compression of a Census-scale workload.

Section 2.3 of the paper explains why coresets make compression
embarrassingly parallel: coresets of disjoint shards compose by union and
their size does not depend on the shard size, so every worker compresses
its shard independently and the host merges the messages in one round.

This example runs that recipe for real through the parallel execution
engine (:mod:`repro.parallel`): the same sharded build is executed on the
serial backend, on the shared-memory process backend at 1, 2, and 4
workers, and on the **asynchronous** persistent-pool backend (``submit`` →
futures, each shard handed to the host the moment it completes), with
measured wall-clock per configuration.  Two properties to watch in the
output:

* the coresets are **bit-identical** in every configuration — the shard
  count and the seed key the result; backend, worker count, and sync/async
  scheduling only change how fast it is produced (the spawn-keyed seed
  protocol documented in ``src/repro/parallel/README.md`` is why completion
  order cannot matter);
* the speedup tracks the machine: on an N-core box the process backends
  approach min(N, workers)x on this workload, while on a single core they
  dip below 1x (the workers time-slice one core and pay pool overhead);
  the async backend additionally amortises pool start-up across builds by
  keeping its workers alive.

Run with::

    python examples/mapreduce_compression.py
"""

from __future__ import annotations

import time

from repro.clustering import kmeans
from repro.clustering.cost import clustering_cost
from repro.core import FastCoreset
from repro.data import census_like
from repro.evaluation import coreset_distortion
from repro.parallel import (
    ProcessAsyncExecutor,
    ProcessExecutor,
    SerialExecutor,
    ShardedCoresetBuilder,
)


def main() -> None:
    print("Generating a Census-like dataset ...")
    dataset = census_like(fraction=0.01, seed=0)
    points = dataset.points
    k = 50
    n_shards = 4
    per_shard = 20 * k
    print(f"n={dataset.n}, d={dataset.d}, k={k}, shards={n_shards}\n")

    builder = ShardedCoresetBuilder(
        sampler=FastCoreset(k=k, seed=0),
        n_shards=n_shards,
        coreset_size_per_shard=per_shard,
        final_coreset_size=40 * k,
        seed=0,
    )

    configurations = (
        [("serial", SerialExecutor())]
        + [(f"process x{workers}", ProcessExecutor(workers=workers)) for workers in (1, 2, 4)]
        # The async variant: same spawn-keyed shard seeds through the
        # persistent pool, with the host collecting shards as they complete.
        + [(f"async x{workers}", ProcessAsyncExecutor(workers=workers)) for workers in (2, 4)]
    )
    results = {}
    baseline = None
    for label, executor in configurations:
        start = time.perf_counter()
        try:
            build = builder.build(points, executor=executor)
            elapsed = time.perf_counter() - start
        finally:
            executor.close()
        if baseline is None:
            baseline = elapsed
        results[label] = build
        print(
            f"{label:12s} wall={elapsed:6.2f}s  speedup={baseline / elapsed:5.2f}x  "
            f"messages={build.message_sizes}  communication={build.communication:,} floats"
        )

    reference = results["serial"].coreset
    identical = all(
        (build.coreset.points == reference.points).all()
        and (build.coreset.weights == reference.weights).all()
        for build in results.values()
    )
    print(f"\nall configurations produced bit-identical coresets: {identical}")

    distortion = coreset_distortion(points, reference, k=k, seed=3)
    print(f"host coreset: {reference.size} points, distortion={distortion:.3f}")

    print("\nSolving k-means on the compression and checking it against the full data ...")
    solution = kmeans(reference.points, k, weights=reference.weights, seed=2)
    cost_on_full = clustering_cost(points, solution.centers)
    cost_estimate = reference.cost(solution.centers)
    print(f"cost estimated on the compression: {cost_estimate:,.0f}")
    print(f"cost evaluated on the full data:   {cost_on_full:,.0f}")
    print(f"estimation error: {abs(cost_estimate - cost_on_full) / cost_on_full:.2%}")


if __name__ == "__main__":
    main()

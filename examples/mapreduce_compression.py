#!/usr/bin/env python3
"""Distributed (MapReduce-style) compression of a Census-scale workload.

Section 2.3 of the paper explains why coresets and MapReduce fit together:
coresets of disjoint shards compose by union and their size does not depend
on the shard size, so a single communication round suffices.  This example
simulates that round on a Census-like dataset and reports the quantities a
database engineer would care about: per-worker shard sizes, message sizes,
total communication volume, and the quality of the host-side compression.

Run with::

    python examples/mapreduce_compression.py
"""

from __future__ import annotations

import time

from repro.clustering import kmeans
from repro.core import FastCoreset, SensitivitySampling
from repro.data import census_like
from repro.distributed import MapReduceCoresetAggregator
from repro.evaluation import coreset_distortion


def main() -> None:
    print("Generating a Census-like dataset ...")
    dataset = census_like(fraction=0.01, seed=0)
    points = dataset.points
    k = 50
    per_worker = 20 * k
    print(f"n={dataset.n}, d={dataset.d}, k={k}\n")

    for n_workers in (2, 4, 8):
        aggregator = MapReduceCoresetAggregator(
            sampler=FastCoreset(k=k, seed=0),
            n_workers=n_workers,
            coreset_size_per_worker=per_worker,
            final_coreset_size=40 * k,
            seed=n_workers,
        )
        start = time.perf_counter()
        round_result = aggregator.run(points)
        elapsed = time.perf_counter() - start
        distortion = coreset_distortion(points, round_result.coreset, k=k, seed=3)
        print(
            f"workers={n_workers}: shard sizes={round_result.shard_sizes}, "
            f"messages={round_result.message_sizes}"
        )
        print(
            f"           communication={round_result.communication:,} floats, "
            f"host coreset size={round_result.coreset.size}, distortion={distortion:.3f}, "
            f"wall time={elapsed:.2f}s"
        )

    print("\nSolving k-means on the host-side compression and checking it against the full data ...")
    aggregator = MapReduceCoresetAggregator(
        sampler=SensitivitySampling(k=k, seed=1),
        n_workers=8,
        coreset_size_per_worker=per_worker,
        final_coreset_size=40 * k,
        seed=1,
    )
    round_result = aggregator.run(points)
    coreset = round_result.coreset
    solution = kmeans(coreset.points, k, weights=coreset.weights, seed=2)
    from repro.clustering.cost import clustering_cost

    cost_on_full = clustering_cost(points, solution.centers)
    cost_estimate = coreset.cost(solution.centers)
    print(f"cost estimated on the compression: {cost_estimate:,.0f}")
    print(f"cost evaluated on the full data:   {cost_on_full:,.0f}")
    print(f"estimation error: {abs(cost_estimate - cost_on_full) / cost_on_full:.2%}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The paper's central question on one plot's worth of numbers: when do cheap samplers break?

The example sweeps the class-imbalance parameter ``gamma`` of the Gaussian
mixture generator (Table 7 of the paper) and reports, for each sampler in
the interpolation from uniform sampling to Fast-Coresets, the coreset
distortion.  At ``gamma = 0`` (balanced clusters) everything works; as the
imbalance grows, the samplers break in order of how little work they do —
uniform first, then lightweight, then the small-``j`` welterweight
constructions, while the Fast-Coreset stays accurate throughout.

Run with::

    python examples/speed_accuracy_tradeoff.py
"""

from __future__ import annotations

from repro.core import (
    FastCoreset,
    LightweightCoreset,
    UniformSampling,
    WelterweightCoreset,
)
from repro.data import gaussian_mixture
from repro.evaluation import coreset_distortion


def main() -> None:
    n, d, n_clusters, k = 20_000, 30, 30, 50
    coreset_size = 20 * k
    gammas = (0.0, 1.0, 3.0, 5.0)

    sampler_factories = {
        "uniform": lambda seed: UniformSampling(seed=seed),
        "lightweight (j=1)": lambda seed: LightweightCoreset(seed=seed),
        "welterweight (j=2)": lambda seed: WelterweightCoreset(k=k, j=2, seed=seed),
        "welterweight (j=log k)": lambda seed: WelterweightCoreset(k=k, seed=seed),
        "fast_coreset (j=k)": lambda seed: FastCoreset(k=k, seed=seed),
    }

    header = f"{'sampler':26s}" + "".join(f"  gamma={gamma:<6.1f}" for gamma in gammas)
    print(f"Coreset distortion as cluster imbalance grows (n={n}, d={d}, k={k}, m={coreset_size})\n")
    print(header)
    print("-" * len(header))
    for name, factory in sampler_factories.items():
        cells = []
        for column, gamma in enumerate(gammas):
            dataset = gaussian_mixture(n=n, d=d, n_clusters=n_clusters, gamma=gamma, seed=17 + column)
            sampler = factory(100 + column)
            coreset = sampler.sample(dataset.points, coreset_size)
            distortion = coreset_distortion(dataset.points, coreset, k=k, seed=200 + column)
            cells.append(f"  {distortion:12.2f}")
        print(f"{name:26s}" + "".join(cells))

    print(
        "\nReading guide (the paper's Table 7): values near 1 mean the compression is faithful;\n"
        "values above 5 are failures.  The further down the table you go, the more work the\n"
        "sampler does per point and the longer the imbalance takes to break it — the\n"
        "speed-vs-accuracy tradeoff in one sweep."
    )


if __name__ == "__main__":
    main()

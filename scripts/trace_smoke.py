"""End-to-end smoke for the trace exporter (the `make trace-smoke` gate).

Runs a small `compress --async --shards 4 --trace` through the real CLI in
a subprocess, then checks that the trace file is valid Chrome trace-event
JSON (required keys, monotone timestamps, matched B/E pairs per track) and
that the expected pipeline stages actually appear.  Cheap enough to run as
a blocking CI step; the thread backend keeps it independent of the
runner's multiprocessing support (process-pool piggybacking is covered by
the `parallel`-marked tests).
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.observability import validate_chrome_trace

#: Span names the smoke insists on: one per instrumented layer (sharded
#: orchestration, the per-task compression, geometry, seeding).
REQUIRED_SPANS = {
    "sharded.build",
    "compress.shard",
    "compress.final",
    "quadtree.fit",
    "fastkpp.seeding",
}


def main() -> int:
    with tempfile.TemporaryDirectory() as scratch:
        directory = Path(scratch)
        rng = np.random.default_rng(5)
        np.save(directory / "data.npy", rng.normal(size=(3000, 5)))
        trace_path = directory / "trace.json"
        command = [
            sys.executable,
            "-m",
            "repro.cli",
            "compress",
            str(directory / "data.npy"),
            "--k",
            "8",
            "--m",
            "200",
            "--async",
            "--shards",
            "4",
            "--backend",
            "thread",
            "--workers",
            "2",
            "--output",
            str(directory / "coreset.npz"),
            "--trace",
            str(trace_path),
            "--metrics",
        ]
        completed = subprocess.run(command, capture_output=True, text=True)
        if completed.returncode != 0:
            print(completed.stdout, file=sys.stderr)
            print(completed.stderr, file=sys.stderr)
            print(f"trace-smoke FAILED: compress exited {completed.returncode}", file=sys.stderr)
            return 1

        payload = json.loads(trace_path.read_text())
        event_count = validate_chrome_trace(payload)
        names = {event["name"] for event in payload["traceEvents"]}
        missing = REQUIRED_SPANS - names
        if missing:
            print(f"trace-smoke FAILED: missing spans {sorted(missing)}", file=sys.stderr)
            return 1

        summary = json.loads(completed.stdout)
        if "metrics" not in summary or "counters" not in summary["metrics"]:
            print("trace-smoke FAILED: --metrics dict absent from the summary", file=sys.stderr)
            return 1

        print(
            f"trace-smoke OK: {event_count} events, "
            f"{len(names)} span names, "
            f"{len(summary['metrics']['counters'])} counters"
        )
        return 0


if __name__ == "__main__":
    sys.exit(main())

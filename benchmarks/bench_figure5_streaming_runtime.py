"""Benchmark regenerating Figure 5 (bottom): streaming vs static construction runtime.

Paper shape to reproduce: the merge-&-reduce pipeline adds overhead (each
block is compressed and the partial compressions are repeatedly re-compressed)
but stays within a small factor of the static construction, and the relative
ordering of the samplers is unchanged.
"""

import numpy as np

from repro.experiments import table5_streaming_comparison


def test_figure5_streaming_runtime(benchmark, bench_scale, run_once, show):
    rows = run_once(
        benchmark,
        table5_streaming_comparison,
        scale=bench_scale,
        datasets=("gaussian",),
        repetitions=1,
        n_blocks=8,
    )
    show("Figure 5 (bottom): streaming vs static runtime", rows, ["runtime_mean", "distortion_mean"])

    def runtime(method: str, setting: str) -> float:
        return float(
            np.mean(
                [row.values["runtime_mean"] for row in rows if row.method == f"{method}[{setting}]"]
            )
        )

    # The cheap samplers remain cheap in the stream; Fast-Coresets remain the
    # most expensive construction in both settings.
    assert runtime("uniform", "streaming") < runtime("fast_coreset", "streaming")
    assert runtime("uniform", "static") < runtime("fast_coreset", "static")

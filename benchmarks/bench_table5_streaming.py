"""Benchmark regenerating Table 5 / Figure 5 (top): streaming vs static distortion.

Paper shape to reproduce: compressing block-by-block under merge-&-reduce
composition does not meaningfully degrade any sampler's distortion — the
accelerated methods perform at least as well in the stream as in the static
setting.
"""

import numpy as np

from repro.experiments import table5_streaming_comparison


def test_table5_streaming_vs_static(benchmark, bench_scale, run_once, show):
    rows = run_once(
        benchmark,
        table5_streaming_comparison,
        scale=bench_scale,
        datasets=("c_outlier", "gaussian", "adult"),
        repetitions=max(1, bench_scale.repetitions - 1),
        n_blocks=8,
    )
    show("Table 5: streaming vs static distortion", rows, ["distortion_mean", "distortion_var", "runtime_mean"])

    def mean_for(method: str, setting: str) -> float:
        selected = [
            row.values["distortion_mean"]
            for row in rows
            if row.method == f"{method}[{setting}]"
        ]
        return float(np.mean(selected))

    # Fast-Coresets stay accurate in both settings.
    assert mean_for("fast_coreset", "static") < 5.0
    assert mean_for("fast_coreset", "streaming") < 5.0
    # Streaming does not catastrophically degrade the sensitivity-based methods.
    for method in ("lightweight", "welterweight", "fast_coreset"):
        assert mean_for(method, "streaming") < mean_for(method, "static") * 3 + 3

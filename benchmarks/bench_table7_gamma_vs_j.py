"""Benchmark regenerating Table 7: class imbalance (gamma) vs candidate-solution size (j).

Paper shape to reproduce: every method achieves low distortion on balanced
mixtures (gamma = 0); as gamma grows the lightweight construction degrades
first, welterweight constructions degrade more slowly the larger ``j`` is,
and the Fast-Coreset (j = k) stays accurate throughout.
"""

import numpy as np

from repro.experiments import table7_imbalance_sweep


def test_table7_gamma_vs_j(benchmark, bench_scale, run_once, show):
    rows = run_once(
        benchmark,
        table7_imbalance_sweep,
        scale=bench_scale,
        gamma_values=(0.0, 1.0, 3.0, 5.0),
        repetitions=bench_scale.repetitions,
    )
    show("Table 7: distortion vs gamma and j", rows, ["distortion_mean", "distortion_var"])

    def distortion(method_prefix: str, gamma: float) -> float:
        selected = [
            row.values["distortion_mean"]
            for row in rows
            if row.method.startswith(method_prefix) and row.parameters["gamma"] == gamma
        ]
        return float(np.mean(selected))

    # Balanced data: everything is accurate.
    for method in ("lightweight", "fast_coreset"):
        assert distortion(method, 0.0) < 3.0
    # The full candidate solution (j = k) never crosses the paper's failure
    # threshold, at any imbalance level.
    for gamma in (0.0, 1.0, 3.0, 5.0):
        assert distortion("fast_coreset", gamma) < 5.0
    # Imbalance is what hurts: the worst distortion in the whole table occurs
    # at gamma >= 3, not on the balanced configurations.
    worst = max(rows, key=lambda row: row.values["distortion_mean"])
    assert worst.parameters["gamma"] >= 3.0

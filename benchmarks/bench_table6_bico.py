"""Benchmark regenerating Table 6: BICO's distortion in the static and streaming settings.

Paper shape to reproduce: BICO's distortion is consistently worse than the
sensitivity-based constructions at equal coreset sizes (several datasets
exceed the failure threshold of 5), and larger coreset budgets help.
"""

import numpy as np

from repro.experiments import table4_sampler_sweep, table6_bico_distortion


def test_table6_bico_distortion(benchmark, bench_scale, run_once, show):
    rows = run_once(
        benchmark,
        table6_bico_distortion,
        scale=bench_scale,
        datasets=("c_outlier", "gaussian", "adult"),
        streaming_datasets=("gaussian",),
        m_scalars=(20, 40) if bench_scale.dataset_fraction < 1.0 else (40, 80),
        repetitions=max(1, bench_scale.repetitions - 1),
        n_blocks=8,
    )
    show("Table 6: BICO distortion (static and streaming)", rows, ["distortion_mean", "distortion_var"])

    bico_gaussian = np.mean(
        [row.values["distortion_mean"] for row in rows if row.dataset == "gaussian" and "static" in row.method]
    )
    # Compare against the Fast-Coreset distortion on the same dataset: BICO
    # should not be better (the paper finds it consistently worse).
    reference_rows = table4_sampler_sweep(
        scale=bench_scale, datasets=("gaussian",), m_scalars=(20,), repetitions=1, seed=1
    )
    fast_gaussian = np.mean(
        [row.values["distortion_mean"] for row in reference_rows if row.method == "fast_coreset"]
    )
    print(f"\nBICO mean distortion on gaussian: {bico_gaussian:.3f}; Fast-Coreset: {fast_gaussian:.3f}")
    assert bico_gaussian >= fast_gaussian * 0.9

"""Benchmark regenerating Figure 3: lightweight coresets miss a small central cluster.

Paper shape to reproduce: on a 2-D Gaussian mixture with a small cluster
near the centre of mass, the lightweight construction places few or no
coreset points inside the small cluster, while sensitivity sampling with
j = k (and the Fast-Coreset) reliably covers it.
"""

from repro.experiments import figure3_cluster_capture


def test_figure3_cluster_capture(benchmark, bench_scale, run_once, show):
    rows = run_once(
        benchmark,
        figure3_cluster_capture,
        scale=bench_scale,
        coreset_size=200,
        repetitions=10,
    )
    show(
        "Figure 3: capture of the small central cluster",
        rows,
        ["capture_rate", "mean_points_in_small_cluster"],
    )
    by_method = {row.method: row for row in rows}
    lightweight = by_method["lightweight"].values["mean_points_in_small_cluster"]
    sensitivity = by_method["sensitivity"].values["mean_points_in_small_cluster"]
    fast = by_method["fast_coreset"].values["mean_points_in_small_cluster"]
    print(
        f"\nmean points in small cluster: lightweight={lightweight:.2f}, "
        f"sensitivity={sensitivity:.2f}, fast_coreset={fast:.2f}"
    )
    # The paper's qualitative claim: the j = k constructions cover the small
    # cluster better than the 1-means (lightweight) construction.
    assert sensitivity > lightweight
    assert by_method["sensitivity"].values["capture_rate"] >= by_method["lightweight"].values["capture_rate"]

"""Benchmark regenerating Figure 1: construction runtime vs k.

Paper shape to reproduce: as ``k`` grows 8x (50 → 400) sensitivity sampling
slows down roughly linearly in ``k`` while the Fast-Coreset runtime grows
only by a small (logarithmic) factor.  The scale-free check below compares
the two methods' slowdown factors between the smallest and largest ``k``.
"""

import numpy as np

from repro.experiments import figure1_runtime_vs_k


def test_figure1_runtime_vs_k(benchmark, bench_scale, run_once, show):
    k_values = (10, 20, 40, 80) if bench_scale.dataset_fraction < 1.0 else (50, 100, 200, 400)
    rows = run_once(
        benchmark,
        figure1_runtime_vs_k,
        scale=bench_scale,
        k_values=k_values,
        datasets=("geometric", "gaussian", "adult"),
        repetitions=1,
        m_scalar=5,
    )
    show("Figure 1: runtime vs k", rows, ["runtime_mean", "slowdown_vs_smallest_k"])

    def slowdown(method: str) -> float:
        method_rows = [row for row in rows if row.method == method]
        by_k = {}
        for row in method_rows:
            by_k.setdefault(row.parameters["k"], []).append(row.values["runtime_mean"])
        ks = sorted(by_k)
        return float(np.mean(by_k[ks[-1]]) / max(np.mean(by_k[ks[0]]), 1e-9))

    sensitivity_slowdown = slowdown("sensitivity")
    fast_slowdown = slowdown("fast_coreset")
    print(
        f"\nslowdown from k={k_values[0]} to k={k_values[-1]}: "
        f"sensitivity={sensitivity_slowdown:.2f}x, fast_coreset={fast_slowdown:.2f}x"
    )
    # The paper's claim: sensitivity sampling scales (roughly linearly) with k,
    # Fast-Coresets are nearly flat — so its slowdown factor must be larger.
    assert sensitivity_slowdown > fast_slowdown

"""Benchmark regenerating Figure 4: the distortion sweep for the k-median objective.

Paper shape to reproduce: the k-median distortions mirror the k-means ones —
uniform sampling fails on the outlier-style datasets, the sensitivity-based
constructions stay accurate, and larger coreset sizes help.
"""

import numpy as np

from repro.experiments import figure4_kmedian_sweep


def test_figure4_kmedian_sweep(benchmark, bench_scale, run_once, show):
    rows = run_once(
        benchmark,
        figure4_kmedian_sweep,
        scale=bench_scale,
        datasets=("c_outlier", "gaussian", "adult"),
        m_scalars=(20, 40) if bench_scale.dataset_fraction < 1.0 else (40, 60, 80),
        repetitions=1,
    )
    show("Figure 4: k-median distortions", rows, ["distortion_mean", "runtime_mean"])

    def mean_distortion(method: str, dataset: str) -> float:
        return float(
            np.mean(
                [
                    row.values["distortion_mean"]
                    for row in rows
                    if row.method == method and row.dataset == dataset
                ]
            )
        )

    # Fast-Coresets stay accurate for k-median as well.
    fast = [row.values["distortion_mean"] for row in rows if row.method == "fast_coreset"]
    assert max(fast) < 5.0
    # The c-outlier failure of uniform sampling carries over from k-means.
    assert mean_distortion("uniform", "c_outlier") >= mean_distortion("fast_coreset", "c_outlier")

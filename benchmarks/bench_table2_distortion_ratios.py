"""Benchmark regenerating Table 2: distortion ratios relative to sensitivity sampling.

Paper shape to reproduce: Fast-Coresets stay within a small constant factor
of sensitivity sampling on every dataset, while uniform sampling matches it
on the well-behaved datasets (Adult, MNIST, Census, ...) and blows up on
Star (~8.5x) and Taxi (~600x).
"""

from repro.experiments import table2_distortion_ratios


def test_table2_distortion_ratios(benchmark, bench_scale, run_once, show):
    rows = run_once(
        benchmark,
        table2_distortion_ratios,
        scale=bench_scale,
        datasets=("adult", "mnist", "star", "taxi", "census"),
        repetitions=bench_scale.repetitions,
    )
    show("Table 2: distortion ratio vs sensitivity sampling", rows, ["ratio", "distortion"])

    ratios = {(row.dataset, row.method): row.values["ratio"] for row in rows}
    # Fast-Coresets never degrade by a large factor.
    fast_ratios = [value for (dataset, method), value in ratios.items() if method == "fast_coreset"]
    assert max(fast_ratios) < 5.0
    # Uniform sampling fails on at least one of the pathological datasets
    # (Star or Taxi) by a visibly larger factor than on the benign ones.
    uniform_pathological = max(ratios[("star", "uniform")], ratios[("taxi", "uniform")])
    uniform_benign = max(ratios[("adult", "uniform")], ratios[("census", "uniform")])
    assert uniform_pathological > uniform_benign

"""Ablation benchmarks for the Fast-Coreset design choices (DESIGN.md section 4).

Not part of the paper's tables, but each ablation isolates one ingredient of
Algorithm 1 so a reader can see what it contributes: the per-cluster weight
correction, the spread-reduction preprocessing, the quadtree seeding, and
the Johnson–Lindenstrauss dimension.
"""

import numpy as np

from repro.experiments.ablations import (
    ablation_jl_dimension,
    ablation_seeding,
    ablation_spread_reduction,
    ablation_weight_correction,
)


def test_ablation_weight_correction(benchmark, bench_scale, run_once, show):
    rows = run_once(
        benchmark,
        ablation_weight_correction,
        scale=bench_scale,
        datasets=("gaussian", "geometric"),
        repetitions=bench_scale.repetitions,
    )
    show("Ablation: sensitivity sampling weight correction", rows, ["distortion_mean"])
    # Both variants produce valid coresets on these datasets.
    assert all(row.values["distortion_mean"] < 5.0 for row in rows)


def test_ablation_spread_reduction(benchmark, bench_scale, run_once, show):
    rows = run_once(
        benchmark,
        ablation_spread_reduction,
        scale=bench_scale,
        r_values=(10, 30),
        k=bench_scale.k_small,
        repetitions=1,
    )
    show("Ablation: Fast-Coreset with / without spread reduction", rows, ["distortion_mean", "runtime_mean"])
    with_reduction = [r for r in rows if r.method.endswith("[with_reduction]")]
    without_reduction = [r for r in rows if r.method.endswith("[without_reduction]")]
    # Accuracy is unaffected by the preprocessing.
    assert np.mean([r.values["distortion_mean"] for r in with_reduction]) < 5.0
    assert np.mean([r.values["distortion_mean"] for r in without_reduction]) < 5.0


def test_ablation_seeding(benchmark, bench_scale, run_once, show):
    rows = run_once(
        benchmark,
        ablation_seeding,
        scale=bench_scale,
        datasets=("gaussian",),
        repetitions=bench_scale.repetitions,
    )
    show("Ablation: quadtree seeding vs exact k-means++ seeding", rows, ["distortion_mean", "runtime_mean"])
    by_method = {row.method: row.values["distortion_mean"] for row in rows}
    # The tree-metric seeding sacrifices little accuracy relative to the
    # exact k-means++ seeding.
    assert by_method["quadtree_seeding"] < by_method["kmeans++_seeding"] * 3 + 1


def test_ablation_jl_dimension(benchmark, bench_scale, run_once, show):
    rows = run_once(
        benchmark,
        ablation_jl_dimension,
        scale=bench_scale,
        target_dims=(4, 16, 32),
        repetitions=1,
    )
    show("Ablation: Fast-Coreset distortion vs JL target dimension", rows, ["distortion_mean"])
    distortions = {row.parameters["target_dim"]: row.values["distortion_mean"] for row in rows}
    # A very aggressive projection may hurt, but moderate dimensions suffice.
    assert distortions[32.0] < 5.0

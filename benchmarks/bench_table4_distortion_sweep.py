"""Benchmark regenerating Table 4: distortion of every sampler on every dataset.

Paper shape to reproduce: all methods are accurate on the well-behaved real
datasets; uniform sampling fails catastrophically on c-outlier, geometric
and Taxi-style data; the sensitivity-based constructions (and in particular
Fast-Coresets) never fail; larger coreset sizes reduce distortion.
"""

import numpy as np

from repro.experiments import table4_sampler_sweep


def test_table4_distortion_sweep(benchmark, bench_scale, run_once, show):
    rows = run_once(
        benchmark,
        table4_sampler_sweep,
        scale=bench_scale,
        datasets=("c_outlier", "geometric", "gaussian", "benchmark", "adult", "star", "taxi"),
        m_scalars=(20, 40) if bench_scale.dataset_fraction < 1.0 else (40, 80),
        repetitions=bench_scale.repetitions,
    )
    show("Table 4: distortion by sampler, dataset, and m-scalar", rows, ["distortion_mean", "distortion_var", "runtime_mean"])

    def mean_distortion(method: str, dataset: str) -> float:
        selected = [
            row.values["distortion_mean"]
            for row in rows
            if row.method == method and row.dataset == dataset
        ]
        return float(np.mean(selected))

    # Fast-Coresets never fail (the paper's failure threshold is 5).
    fast = [row.values["distortion_mean"] for row in rows if row.method == "fast_coreset"]
    assert max(fast) < 5.0
    # Uniform sampling fails on the c-outlier dataset by a wide margin.
    assert mean_distortion("uniform", "c_outlier") > mean_distortion("fast_coreset", "c_outlier")
    # Every sampler is fine on the balanced Adult stand-in.
    for method in ("uniform", "lightweight", "welterweight", "fast_coreset"):
        assert mean_distortion(method, "adult") < 2.0

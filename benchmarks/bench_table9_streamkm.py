"""Benchmark regenerating Table 9: StreamKM++ distortion on the artificial datasets.

Paper shape to reproduce: StreamKM++ obtains noticeably worse distortions
than sensitivity-based sampling at the same coreset size (its theoretical
sample size is logarithmic in n and exponential in d), though it does not
fail as catastrophically as uniform sampling.
"""

import numpy as np

from repro.experiments import table4_sampler_sweep, table9_streamkm_distortion


def test_table9_streamkm_distortion(benchmark, bench_scale, run_once, show):
    rows = run_once(
        benchmark,
        table9_streamkm_distortion,
        scale=bench_scale,
        repetitions=bench_scale.repetitions,
    )
    show("Table 9: StreamKM++ distortion on artificial datasets", rows, ["distortion_mean", "distortion_var"])

    streamkm_mean = float(np.mean([row.values["distortion_mean"] for row in rows]))
    reference = table4_sampler_sweep(
        scale=bench_scale,
        datasets=("c_outlier", "geometric", "gaussian", "benchmark"),
        m_scalars=(40,),
        repetitions=1,
        seed=2,
    )
    fast_mean = float(
        np.mean([row.values["distortion_mean"] for row in reference if row.method == "fast_coreset"])
    )
    print(f"\nStreamKM++ mean distortion: {streamkm_mean:.3f}; Fast-Coreset mean: {fast_mean:.3f}")
    # StreamKM++ is not better than the sensitivity-based construction.
    assert streamkm_mean >= fast_mean * 0.8
    assert len(rows) == 4

"""Benchmark regenerating Figure 2 (bottom): construction runtime of every sampler.

Paper shape to reproduce: runtimes are ordered
uniform < lightweight < welterweight < Fast-Coreset — the central
speed-vs-accuracy tradeoff.  (The top half of Figure 2 visualises the
Table 4 distortions and is covered by ``bench_table4_distortion_sweep``.)
"""

import numpy as np

from repro.experiments.sampler_sweep import figure2_runtime_sweep


def test_figure2_runtime_sweep(benchmark, bench_scale, run_once, show):
    rows = run_once(
        benchmark,
        figure2_runtime_sweep,
        scale=bench_scale,
        datasets=("gaussian", "adult"),
        m_scalars=(40,),
        repetitions=bench_scale.repetitions,
    )
    show("Figure 2 (bottom): construction runtime by sampler", rows, ["runtime_mean", "distortion_mean"])

    def mean_runtime(method: str) -> float:
        return float(np.mean([row.values["runtime_mean"] for row in rows if row.method == method]))

    uniform = mean_runtime("uniform")
    lightweight = mean_runtime("lightweight")
    fast = mean_runtime("fast_coreset")
    print(f"\nmean runtimes: uniform={uniform:.4f}s lightweight={lightweight:.4f}s fast_coreset={fast:.4f}s")
    # The tradeoff ordering of the paper: the cruder the sampler, the faster.
    assert uniform <= lightweight * 1.5
    assert lightweight < fast

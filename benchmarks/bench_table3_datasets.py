"""Benchmark regenerating Table 3: dataset characteristics.

The dimensions of every stand-in must match the documented dimensions of the
original datasets; the point counts are scaled by the experiment scale's
``dataset_fraction`` (1.0 under REPRO_FULL_SCALE).
"""

from repro.experiments import table3_dataset_summary


def test_table3_dataset_summary(benchmark, bench_scale, run_once, show):
    rows = run_once(benchmark, table3_dataset_summary, scale=bench_scale)
    show(
        "Table 3: dataset characteristics (paper vs generated stand-in)",
        rows,
        ["paper_points", "paper_dim", "generated_points", "generated_dim"],
    )
    assert len(rows) == 7
    for row in rows:
        assert row.values["generated_dim"] == row.values["paper_dim"]
        assert row.values["generated_points"] > 0

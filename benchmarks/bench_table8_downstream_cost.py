"""Benchmark regenerating Table 8: downstream k-means cost from each sampler's coreset.

Paper shape to reproduce: among the samplers whose distortion is small on a
dataset, the downstream solution costs are all within a few percent of each
other — "no sampling method leads to solutions with consistently minimal
costs".
"""

import numpy as np

from repro.experiments import table8_downstream_cost


def test_table8_downstream_cost(benchmark, bench_scale, run_once, show):
    rows = run_once(
        benchmark,
        table8_downstream_cost,
        scale=bench_scale,
        datasets=("mnist", "adult", "census"),
        k=min(50, bench_scale.k_small),
    )
    show("Table 8: cost(P, C_S) of the coreset-derived solutions", rows, ["cost_on_full"])

    # On the well-behaved datasets the sensitivity-based samplers produce
    # solutions within a modest factor of each other.
    for dataset in ("adult", "census"):
        costs = [row.values["cost_on_full"] for row in rows if row.dataset == dataset]
        assert max(costs) <= min(costs) * 2.0, dataset
    # No single sampler wins on every dataset by a large margin: the best and
    # the median sampler are close in aggregate.
    by_method = {}
    for row in rows:
        by_method.setdefault(row.method, []).append(row.values["cost_on_full"])
    aggregate = {method: float(np.mean(values)) for method, values in by_method.items()}
    ordered = sorted(aggregate.values())
    assert ordered[0] >= ordered[len(ordered) // 2] * 0.5

"""Perf-regression harness for the library's tracked hot paths.

Times the *frozen reference implementations* (:mod:`repro.reference`)
against the optimized live implementations **in the same run**, on the same
synthetic workloads and hardware, and writes a machine-readable
``BENCH_hotpaths.json`` at the repository root.  Every future perf PR is
judged against that trajectory: ``make bench`` re-runs this script with
``--check-regression``, which refuses to overwrite the JSON when the
optimized time of any tracked workload regresses by more than
``REGRESSION_TOLERANCE`` (20%), and ``make bench-check`` replays the
tracked workloads without touching the JSON at all (``--check-only``).
Replays use the same best-of-3 timing as recording: a best-of-1 replay
against a best-of-3 recording is systematically slower and turns host
timing noise into spurious gate failures.

Measured components per ``(n, d, k)`` workload:

* ``quadtree_fit`` — one tree fit (CSR grouping + distance table vs the
  seed's dict-of-arrays Python grouping loop).
* ``fast_kmeans_pp`` — the full multi-tree seeding (shared spread,
  incremental D²-mass, searchsorted draws vs per-center recompute +
  ``generator.choice``).
* ``lloyd`` — a fixed-iteration Lloyd refinement (Hamerly-bounded pruning +
  warm-started assignments vs the frozen full-recompute loop; the two are
  bit-identical, so the comparison times pure pruning).
* ``merge_reduce`` — a full merge-&-reduce stream with a Fast-Coreset
  sampler (shared cached spread vs the frozen two-estimates-per-compression
  baseline).
* ``merge_reduce_streamkm`` — one StreamKM++ coreset-tree reduction
  (batched envelope draws + incremental assignment vs sequential seeding +
  a second full distance block).
* ``parallel_shard`` — sharded Fast-Coreset construction through the
  parallel execution engine: the shared-memory process backend at the
  row's worker count (the ``k`` column) vs the serial executor on the same
  fixed shard layout.  Both sides produce bit-identical coresets, so the
  ratio times pure execution overhead/speedup; the achievable speedup is
  capped by the machine's core count (a single-core CI box records ~1x).
* ``async_stream`` — the overlapped streaming pipeline (double-buffered
  prefetch, async executor at the row's worker count: the serial inline
  backend at workers=1 — the CLI's one-worker default — and the persistent
  thread pool beyond) vs the synchronous serial-executor pipeline on the
  identical spawn-keyed stream.  The two produce bit-identical coresets,
  so the ratio times the async machinery itself: at workers=1 it must not
  fall below ~1x (the acceptance gate — overlap may not cost anything),
  and extra workers add whatever the GIL releases (nothing on one core).
* ``overlap_reduce`` — the overlapped-reduction streaming pipeline (every
  merge-&-reduce fold submitted to the async pool the moment both inputs
  exist, chained on their futures) vs the identical async pipeline with
  ``overlap_reduces=False`` (leaves overlap, every reduce on the host
  thread — the PR-4 behaviour).  Bit-identical coresets; the ratio times
  the removal of the host-thread reduce floor, and the rows additionally
  record ``host_reduce_seconds`` (optimized) next to
  ``host_reduce_seconds_baseline`` so the trajectory shows the floor
  itself shrinking, not just the ratio.
* ``quadtree_fit_incr`` — the constant-factor sweep of the fit (incremental
  compact keys off the one-shot digit matrix, packbits pattern LUTs,
  buffer-reusing CSR grouping) vs the frozen PR-1..4 fit
  (:class:`~repro.reference.presweep_hotpath.PreSweepQuadtreeEmbedding`:
  per-level ``hash_rows`` over a doubled lattice).  Bit-identical trees;
  both sides pay the same live spread estimate.
* ``lloyd_fused`` — the fused suspect kernel + epoch-anchored cumulative
  drift bounds + flat-bincount M-step vs the frozen PR-2 pruned engine
  (:func:`~repro.reference.presweep_hotpath.presweep_kmeans`).
  Bit-identical results; the ratio times pure bound quality and
  constant-factor work per iteration.
* ``merge_reduce_cached_bound`` — the streaming pipeline with the
  per-stream crude-cost-bound cache (one Algorithm-2 binary search per
  refresh, shared with the spread cache's signal) vs the identical
  pipeline with the cache disabled (one search per compression).
* ``windowed_stream_slide`` / ``windowed_stream_decay`` — the dashboard
  pattern (one window query after every block) on the windowed
  merge-&-reduce tree (incremental stamped buckets, folds over compressed
  summaries) vs :class:`~repro.reference.naive_window.NaiveWindowReference`
  recomputing the window from retained raw blocks and compressing it from
  scratch at every query — what a consumer without the tree would pay for
  the same per-block coreset freshness.
* ``quadtree_fit_native`` — the fit with the compiled grouping kernel
  (fused radix/hash ``csr_group``) vs the frozen PR-5/6 numpy fit
  (:class:`~repro.reference.prenative_hotpath.PreNativeQuadtreeEmbedding`:
  ``np.argsort(kind="stable")`` + the five-pass numpy CSR pipeline).
  Bit-identical trees; the rows record the serving kernel tier and are
  demoted to ``informational`` when the tier is in fallback mode (the
  ratio would then time numpy against itself).
* ``lloyd_native`` — the pruned engine with the compiled warm-phase
  kernels (fused einsum-replica bound refresh, per-candidate evaluation
  with guarded direct reassignment, native M-step sums) vs the frozen
  PR-5/6 numpy engine
  (:func:`~repro.reference.prenative_hotpath.prenative_kmeans`).
  Bit-identical centers/assignments/costs; same fallback demotion as
  ``quadtree_fit_native``.
* ``fastkpp_native`` — the full multi-tree seeding with the compiled
  Fast-kmeans++ kernels (pointer-table level sweeps resolving the center's
  cell per level in C, sequential-prefix D² draws) vs the frozen PR-9
  numpy seeding
  (:func:`~repro.reference.prekernel_hotpath.prekernel_fast_kmeans_plus_plus`:
  per-level fancy-indexed sweeps + cumsum/searchsorted draws).
  Bit-identical draws/centers/assignments/costs; both sides pay the same
  live tree fits; same fallback demotion as ``quadtree_fit_native``.
* ``crude_bound_native`` — several full Algorithm-2 binary searches with
  the compiled occupancy probe (fused lattice refresh + linear-probing
  distinct count) vs the frozen PR-9 numpy probes
  (:func:`~repro.reference.prekernel_hotpath.prekernel_crude_cost_upper_bound`).
  Identical bounds; the spread is precomputed once and passed to both
  sides so the ratio times the probe-dominated fold itself; same fallback
  demotion.  ``--components native`` selects all four compiled-tier rows.

Multi-worker rows (``parallel_shard`` / ``async_stream`` /
``overlap_reduce`` beyond one worker) record a ``cores`` field and are
marked ``informational`` when the
recording machine has fewer cores than the row's worker count: a pool
cannot beat serial execution without cores to run on, so such rows are
excluded from the regression guard instead of hiding behind a widened
tolerance.

Usage::

    PYTHONPATH=src python benchmarks/bench_perf_hotpaths.py [--full]
        [--repeats R] [--check-regression] [--check-only]
        [--workloads NAME [NAME ...]] [--output PATH]

The quick (tracked) suite runs by default; ``--full`` adds larger sweeps.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro import observability
from repro.clustering.fast_kmeans_pp import fast_kmeans_plus_plus
from repro.clustering.lloyd import kmeans
from repro.core.fast_coreset import FastCoreset
from repro.core.spread_reduction import crude_cost_upper_bound
from repro.data.synthetic import gaussian_mixture
from repro.geometry.quadtree import QuadtreeEmbedding, compute_spread
from repro.parallel import (
    ProcessExecutor,
    SerialAsyncExecutor,
    SerialExecutor,
    ShardedCoresetBuilder,
    ThreadAsyncExecutor,
)
from repro.native import native_status
from repro.reference.naive_lloyd import naive_kmeans
from repro.reference.prekernel_hotpath import (
    prekernel_crude_cost_upper_bound,
    prekernel_fast_kmeans_plus_plus,
)
from repro.reference.prenative_hotpath import PreNativeQuadtreeEmbedding, prenative_kmeans
from repro.reference.presweep_hotpath import PreSweepQuadtreeEmbedding, presweep_kmeans
from repro.reference.seed_hotpath import SeedQuadtreeEmbedding, seed_fast_kmeans_plus_plus
from repro.reference.naive_window import NaiveWindowReference
from repro.reference.seed_streaming import (
    seed_compute_spread,
    seed_stream_coreset,
    seed_streamkm_reduce,
)
from repro.streaming.merge_reduce import StreamingCoresetPipeline, stream_dataset
from repro.streaming.stream import DataStream
from repro.streaming.streamkm import StreamKMPlusPlus
from repro.streaming.window import (
    ExponentialDecay,
    SlidingCountWindow,
    WindowedMergeReduceTree,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_hotpaths.json"

#: Refuse to record a run where any tracked workload got this much slower.
REGRESSION_TOLERANCE = 0.20

#: Per-component overrides of the guard tolerance.  The ``parallel_shard``
#: ratio divides a process-pool wall-clock by a serial one, so OS scheduling
#: jitter hits only its numerator: on a busy or even adequately-cored runner
#: the best-of-R ratio routinely swings ±50% with zero code change
#: (measured: 1.24 vs 1.80 across idle/busy runs of an identical build).
#: The wide tolerance keeps the rows guarded against catastrophic
#: regressions (a doubled ratio) without turning scheduler noise into a red
#: gate.  ``async_stream`` divides two pipeline wall-clocks whose
#: difference is a handful of thread hand-offs, so scheduler jitter
#: dominates the same way.  Rows whose worker count exceeds the recording
#: machine's core count are excluded from the guard entirely (marked
#: ``informational`` at record time) — a pool cannot beat serial execution
#: without cores to run on, so their ratios are pure noise.
#: The windowed-stream rows time 16 queries x 2 sampler compressions per
#: side, each individually allocator/cache-state sensitive, and the
#: recorded best-of-3 ratio was historically replayed by ``make
#: bench-check`` at best-of-1 — observed no-change swings reached ~+33%
#: (the checks now replay at best-of-3 too).  The widened (but
#: still blocking) tolerance keeps the rows guarding the failure mode that
#: matters: losing the incremental window maintenance pushes the ratio
#: from ~0.45 toward 1.0 (>+100%).
COMPONENT_TOLERANCE = {
    "parallel_shard": 1.00,
    "async_stream": 1.00,
    "overlap_reduce": 1.00,
    "windowed_stream_slide": 0.50,
    "windowed_stream_decay": 0.50,
}

#: Components whose rows depend on real hardware concurrency: the ``k``
#: column carries the worker count, and rows recorded with fewer cores than
#: workers are stamped ``informational``.
PARALLEL_COMPONENTS = {"parallel_shard", "async_stream", "overlap_reduce"}

#: Components whose optimized side is the compiled kernel tier.  Rows are
#: stamped ``informational`` when the tier resolves to fallback mode (no
#: compiler, no numba, or ``REPRO_NATIVE=0``): the ratio would then compare
#: the numpy paths against themselves and guard nothing.
NATIVE_COMPONENTS = {
    "quadtree_fit_native",
    "lloyd_native",
    "fastkpp_native",
    "crude_bound_native",
}

#: Binary-search folds per ``crude_bound_native`` timing (one fold = one
#: full Algorithm-2 search; several folds lift the row out of timer noise).
CRUDE_BOUND_FOLDS = 8

#: ``--components`` group aliases, expanded before filtering.
COMPONENT_GROUPS = {"native": sorted(NATIVE_COMPONENTS)}


def available_cores() -> int:
    """Cores usable by this process (affinity-aware where supported)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1

#: Lloyd workloads run up to this many iterations with tolerance 0 (the
#: library's default ``max_iterations``) so both engines do an identical —
#: and realistically long — amount of refinement work.
LLOYD_ITERATIONS = 50

#: Streaming workloads: block count of the merge-&-reduce tree and target
#: size (the paper's ``m = 40k`` default).
STREAM_BLOCKS = 16

#: Windowed-stream workloads: sliding-window width (blocks) and decay
#: half-life (block stamps) of the per-block-query rows.
WINDOW_BLOCKS = 8
DECAY_HALF_LIFE = 4.0

#: Sharded-construction workloads: fixed shard layout and compression
#: parameters.  The shard count keys the coreset, so every row (any worker
#: count, either backend) builds the identical compression.
PARALLEL_SHARDS = 4
PARALLEL_K = 10

#: (name, n, d, k, component).  The ``quick`` suite is the tracked set every
#: PR must hold; ``--full`` adds larger sweeps for local investigation.
QUICK_WORKLOADS = [
    ("fast_kmeans_pp_n10k_d5_k50", 10_000, 5, 50, "fast_kmeans_pp"),
    ("fast_kmeans_pp_n50k_d10_k100", 50_000, 10, 100, "fast_kmeans_pp"),
    ("fast_kmeans_pp_n20k_d20_k64", 20_000, 20, 64, "fast_kmeans_pp"),
    ("quadtree_fit_n50k_d10", 50_000, 10, 0, "quadtree_fit"),
    ("quadtree_fit_n20k_d20", 20_000, 20, 0, "quadtree_fit"),
    ("lloyd_n20k_d10_k50", 20_000, 10, 50, "lloyd"),
    ("lloyd_n20k_d10_k100", 20_000, 10, 100, "lloyd"),
    ("merge_reduce_n40k_d10_k10", 40_000, 10, 10, "merge_reduce"),
    ("merge_reduce_streamkm_n20k_d10_m400", 20_000, 10, 400, "merge_reduce_streamkm"),
    # Constant-factor sweep rows: the frozen previously-optimized
    # implementations (repro.reference.presweep_hotpath) are the baseline.
    ("quadtree_fit_incr_n50k_d20", 50_000, 20, 0, "quadtree_fit_incr"),
    ("quadtree_fit_incr_n20k_d30", 20_000, 30, 0, "quadtree_fit_incr"),
    ("lloyd_fused_n80k_d10_k20", 80_000, 10, 20, "lloyd_fused"),
    ("lloyd_fused_n100k_d10_k20", 100_000, 10, 20, "lloyd_fused"),
    ("merge_reduce_cached_bound_n40k_d10_k10", 40_000, 10, 10, "merge_reduce_cached_bound"),
    # Windowed streams, queried after every block; the naive
    # recompute-from-window oracle is the baseline.
    ("windowed_stream_slide_n40k_d10_k10", 40_000, 10, 10, "windowed_stream_slide"),
    ("windowed_stream_decay_n40k_d10_k10", 40_000, 10, 10, "windowed_stream_decay"),
    # Compiled-tier rows: the frozen PR-5/6 numpy hot paths
    # (repro.reference.prenative_hotpath) are the baseline.
    ("quadtree_fit_native_n50k_d10", 50_000, 10, 0, "quadtree_fit_native"),
    ("lloyd_native_n80k_d10_k20", 80_000, 10, 20, "lloyd_native"),
    # Fast-kmeans++ / Algorithm-2 compiled-tier rows: the frozen PR-9
    # numpy hot paths (repro.reference.prekernel_hotpath) are the baseline.
    ("fastkpp_native_n50k_d10_k300", 50_000, 10, 300, "fastkpp_native"),
    ("crude_bound_native_n40k_d10_k10", 40_000, 10, 10, "crude_bound_native"),
    # The k column carries the process-backend worker count for these rows.
    ("parallel_shard_n200k_d10_w1", 200_000, 10, 1, "parallel_shard"),
    ("parallel_shard_n200k_d10_w2", 200_000, 10, 2, "parallel_shard"),
    ("parallel_shard_n200k_d10_w4", 200_000, 10, 4, "parallel_shard"),
    # The k column carries the async worker count for these rows.
    ("async_stream_n40k_d10_w1", 40_000, 10, 1, "async_stream"),
    ("async_stream_n40k_d10_w2", 40_000, 10, 2, "async_stream"),
    # The k column carries the async worker count; overlapped reduces vs
    # the leaf-only-async pipeline at the same worker count.
    ("overlap_reduce_n40k_d10_w1", 40_000, 10, 1, "overlap_reduce"),
    ("overlap_reduce_n40k_d10_w2", 40_000, 10, 2, "overlap_reduce"),
    ("overlap_reduce_n40k_d10_w4", 40_000, 10, 4, "overlap_reduce"),
]
FULL_EXTRA = [
    ("fast_kmeans_pp_n100k_d10_k200", 100_000, 10, 200, "fast_kmeans_pp"),
    ("quadtree_fit_n100k_d10", 100_000, 10, 0, "quadtree_fit"),
    ("lloyd_n50k_d10_k100", 50_000, 10, 100, "lloyd"),
    ("merge_reduce_n100k_d10_k20", 100_000, 10, 20, "merge_reduce"),
]


def _workload_points(n: int, d: int, seed: int = 1) -> np.ndarray:
    clusters = max(2, min(50, n // 200))
    return gaussian_mixture(n=n, d=d, n_clusters=clusters, gamma=0.0, seed=seed).points


def _kernel_tier_extras(kernel: str) -> dict:
    """Attribution columns for compiled-tier rows: which tier and provider
    produced the optimized timing (recorded numbers are meaningless without
    it), plus the numba version when that provider is importable."""
    status = native_status()
    return {
        "kernel_tier": status["tier"],
        "kernel_provider": status["kernels"][kernel]["provider"],
        "numba_version": status["providers"].get("numba", {}).get("numba_version"),
    }


def run_workload(
    name: str, n: int, d: int, k: int, component: str, repeats: int, spans: bool = False
) -> dict:
    points = _workload_points(n, d)
    extras: dict = {}
    optimized_fn = None
    pair: dict = {}

    def _one_shot(fn) -> float:
        start = time.perf_counter()
        fn()
        return time.perf_counter() - start

    def _timed(fn, timed_repeats):
        # Remember the optimized-side callable so --spans can re-run it once
        # under tracing AFTER the timed repeats (tracing never pollutes the
        # recorded seconds).  Every branch times its optimized side first.
        nonlocal optimized_fn
        if optimized_fn is None:
            optimized_fn = fn
        # Run once now (branches read side effects — diagnostics dicts —
        # right after), register the callable, and let the interleaved loop
        # below supply the remaining repeats.
        pair["optimized"] = (fn, timed_repeats)
        return _one_shot(fn)

    def _best_of(fn, timed_repeats):
        # Shadows the module-level helper for the seed side of the pair:
        # same run-once-and-register contract as ``_timed``.
        pair["seed"] = (fn, timed_repeats)
        return _one_shot(fn)
    if component == "fast_kmeans_pp":
        optimized = _timed(lambda: fast_kmeans_plus_plus(points, k, seed=0), repeats)
        seed_time = _best_of(
            lambda: seed_fast_kmeans_plus_plus(
                points, k, seed=0, spread_function=seed_compute_spread
            ),
            repeats,
        )
    elif component == "quadtree_fit":
        optimized = _timed(lambda: QuadtreeEmbedding(seed=0).fit(points), repeats)
        seed_time = _best_of(
            lambda: SeedQuadtreeEmbedding(
                seed=0, spread_function=seed_compute_spread
            ).fit(points),
            repeats,
        )
    elif component == "quadtree_fit_incr":
        optimized = _timed(lambda: QuadtreeEmbedding(seed=0).fit(points), repeats)
        # The baseline is the frozen PR-1..4 fit; both sides pay the same
        # (live) spread estimator, so the ratio times the sweep itself.
        seed_time = _best_of(
            lambda: PreSweepQuadtreeEmbedding(seed=0).fit(points), repeats
        )
    elif component == "lloyd_fused":
        initial = points[np.random.default_rng(5).choice(n, size=k, replace=False)]
        optimized = _timed(
            lambda: kmeans(
                points,
                k,
                initial_centers=initial,
                max_iterations=LLOYD_ITERATIONS,
                tolerance=0.0,
                seed=0,
            ),
            repeats,
        )
        seed_time = _best_of(
            lambda: presweep_kmeans(
                points,
                k,
                initial_centers=initial,
                max_iterations=LLOYD_ITERATIONS,
                tolerance=0.0,
                seed=0,
            ),
            repeats,
        )
    elif component == "quadtree_fit_native":
        optimized = _timed(lambda: QuadtreeEmbedding(seed=0).fit(points), repeats)
        # Baseline: the frozen PR-5/6 numpy fit (stable argsort + five-pass
        # CSR pipeline); both sides pay the same live spread estimator.
        seed_time = _best_of(
            lambda: PreNativeQuadtreeEmbedding(seed=0).fit(points), repeats
        )
        extras.update(_kernel_tier_extras("csr_group"))
    elif component == "lloyd_native":
        initial = points[np.random.default_rng(5).choice(n, size=k, replace=False)]
        optimized = _timed(
            lambda: kmeans(
                points,
                k,
                initial_centers=initial,
                max_iterations=LLOYD_ITERATIONS,
                tolerance=0.0,
                seed=0,
            ),
            repeats,
        )
        # Baseline: the frozen PR-5/6 numpy pruned engine (clear-only
        # prove-stay, separate refresh/erode/bincount passes).
        seed_time = _best_of(
            lambda: prenative_kmeans(
                points,
                k,
                initial_centers=initial,
                max_iterations=LLOYD_ITERATIONS,
                tolerance=0.0,
                seed=0,
            ),
            repeats,
        )
        extras.update(_kernel_tier_extras("lloyd_refresh_bounds"))
    elif component == "fastkpp_native":
        optimized = _timed(lambda: fast_kmeans_plus_plus(points, k, seed=0), repeats)
        # Baseline: the frozen PR-9 numpy seeding (per-level fancy-indexed
        # sweeps + cumsum/searchsorted draws); both sides pay the same live
        # tree fits, so the ratio times the sweeps and draws themselves.
        seed_time = _best_of(
            lambda: prekernel_fast_kmeans_plus_plus(points, k, seed=0), repeats
        )
        extras.update(_kernel_tier_extras("fkpp_level_score"))
    elif component == "crude_bound_native":
        # One precomputed spread shared by every fold on both sides: the
        # binary search's occupancy probes dominate the fold, which is what
        # the compiled probe accelerates.
        spread = compute_spread(points)

        def _crude_folds(bound_fn) -> None:
            for fold in range(CRUDE_BOUND_FOLDS):
                bound_fn(points, k, spread=spread, seed=fold)

        optimized = _timed(lambda: _crude_folds(crude_cost_upper_bound), repeats)
        # Baseline: the frozen PR-9 numpy probes (hoisted-normalization
        # lattice refresh + np.unique distinct count).
        seed_time = _best_of(
            lambda: _crude_folds(prekernel_crude_cost_upper_bound), repeats
        )
        extras["folds"] = CRUDE_BOUND_FOLDS
        extras.update(_kernel_tier_extras("crude_bound_probe"))
    elif component == "merge_reduce_cached_bound":
        m = 40 * k
        sampler = FastCoreset(k=k, seed=0)

        def _run_stream(cache: bool) -> None:
            StreamingCoresetPipeline(
                sampler=sampler, coreset_size=m, seed=1, cache_cost_bound=cache
            ).run(DataStream.with_block_count(points, STREAM_BLOCKS))

        optimized = _timed(lambda: _run_stream(True), repeats)
        # Baseline: the identical pipeline minus the cost-bound cache (one
        # Algorithm-2 binary search per compression).
        seed_time = _best_of(lambda: _run_stream(False), repeats)
    elif component in ("windowed_stream_slide", "windowed_stream_decay"):
        m = 40 * k
        sampler = FastCoreset(k=k, seed=0)
        sliding = component.endswith("slide")
        blocks = list(DataStream.with_block_count(points, STREAM_BLOCKS))

        def _run_windowed_tree() -> None:
            # The dashboard pattern: a fresh window coreset after every
            # block, served from the incrementally maintained buckets.
            tree = WindowedMergeReduceTree(
                sampler=sampler,
                coreset_size=m,
                seed=1,
                window=(
                    SlidingCountWindow(WINDOW_BLOCKS)
                    if sliding
                    else ExponentialDecay(DECAY_HALF_LIFE)
                ),
            )
            for block_points, block_weights in blocks:
                tree.add_block(block_points, block_weights)
                tree.query()

        def _run_naive_recompute() -> None:
            # Baseline: retain raw blocks, rebuild + compress the whole
            # window from scratch at every query.
            reference = (
                NaiveWindowReference(window_blocks=WINDOW_BLOCKS)
                if sliding
                else NaiveWindowReference(half_life=DECAY_HALF_LIFE)
            )
            for block_points, block_weights in blocks:
                reference.add_block(block_points, block_weights)
                reference.compress(sampler, m, seed=1)

        optimized = _timed(_run_windowed_tree, repeats)
        seed_time = _best_of(_run_naive_recompute, repeats)
        extras["queries"] = STREAM_BLOCKS
    elif component == "lloyd":
        initial = points[np.random.default_rng(5).choice(n, size=k, replace=False)]
        optimized = _timed(
            lambda: kmeans(
                points,
                k,
                initial_centers=initial,
                max_iterations=LLOYD_ITERATIONS,
                tolerance=0.0,
                seed=0,
            ),
            repeats,
        )
        seed_time = _best_of(
            lambda: naive_kmeans(
                points,
                k,
                initial_centers=initial,
                max_iterations=LLOYD_ITERATIONS,
                tolerance=0.0,
                seed=0,
            ),
            repeats,
        )
    elif component == "merge_reduce":
        m = 40 * k
        sampler = FastCoreset(k=k, seed=0)
        optimized = _timed(
            lambda: stream_dataset(points, sampler, m, n_blocks=STREAM_BLOCKS, seed=1),
            repeats,
        )
        seed_time = _best_of(
            lambda: seed_stream_coreset(points, sampler, m, n_blocks=STREAM_BLOCKS, seed=1),
            repeats,
        )
    elif component == "merge_reduce_streamkm":
        m = k  # the k column doubles as the representative count
        weights = np.ones(n, dtype=np.float64)
        sampler = StreamKMPlusPlus(coreset_size=m, seed=0)
        optimized = _timed(lambda: sampler.sample(points, m, seed=2), repeats)
        seed_time = _best_of(lambda: seed_streamkm_reduce(points, weights, m, seed=2), repeats)
    elif component == "async_stream":
        workers = k  # the k column doubles as the async worker count
        m = 40 * PARALLEL_K
        sampler = FastCoreset(k=PARALLEL_K, seed=0)
        diagnostics: dict = {}

        def _run_async_stream() -> None:
            # workers=1 is the CLI's default async configuration: leaves
            # compress inline while the reader thread prefetches; the
            # thread pool only enters the picture with real concurrency.
            executor = (
                SerialAsyncExecutor()
                if workers == 1
                else ThreadAsyncExecutor(workers=workers)
            )
            try:
                pipeline = StreamingCoresetPipeline(
                    sampler=sampler,
                    coreset_size=m,
                    seed=1,
                    executor=executor,
                    prefetch_batches=2,
                )
                pipeline.run(DataStream.with_block_count(points, STREAM_BLOCKS))
            finally:
                executor.close()
            diagnostics["optimized"] = pipeline.last_diagnostics

        def _run_sync_stream() -> None:
            # The "seed" column is the synchronous serial-executor pipeline
            # on the identical spawn-keyed stream (bit-identical output).
            pipeline = StreamingCoresetPipeline(
                sampler=sampler,
                coreset_size=m,
                seed=1,
                executor=SerialExecutor(),
            )
            pipeline.run(DataStream.with_block_count(points, STREAM_BLOCKS))
            diagnostics["baseline"] = pipeline.last_diagnostics

        optimized = _timed(_run_async_stream, repeats)
        seed_time = _best_of(_run_sync_stream, repeats)
        extras["host_reduce_seconds"] = round(
            diagnostics["optimized"]["host_reduce_seconds"], 6
        )
        extras["host_reduce_seconds_baseline"] = round(
            diagnostics["baseline"]["host_reduce_seconds"], 6
        )
    elif component == "overlap_reduce":
        workers = k  # the k column doubles as the async worker count
        m = 40 * PARALLEL_K
        sampler = FastCoreset(k=PARALLEL_K, seed=0)
        diagnostics = {}

        def _run_overlap_stream(overlap: bool, slot: str) -> None:
            # Both sides run the identical async thread-pool pipeline; the
            # only difference is where reduces execute, so the ratio times
            # the host-thread reduce floor and nothing else.
            executor = ThreadAsyncExecutor(workers=workers)
            try:
                pipeline = StreamingCoresetPipeline(
                    sampler=sampler,
                    coreset_size=m,
                    seed=1,
                    executor=executor,
                    prefetch_batches=2,
                    overlap_reduces=overlap,
                )
                pipeline.run(DataStream.with_block_count(points, STREAM_BLOCKS))
            finally:
                executor.close()
            diagnostics[slot] = pipeline.last_diagnostics

        optimized = _timed(lambda: _run_overlap_stream(True, "optimized"), repeats)
        # The "seed" column is the leaf-only-async pipeline (host reduces).
        seed_time = _best_of(lambda: _run_overlap_stream(False, "baseline"), repeats)
        extras["host_reduce_seconds"] = round(
            diagnostics["optimized"]["host_reduce_seconds"], 6
        )
        extras["host_reduce_seconds_baseline"] = round(
            diagnostics["baseline"]["host_reduce_seconds"], 6
        )
        extras["reduces_offloaded"] = int(diagnostics["optimized"]["reduces_offloaded"])
    elif component == "parallel_shard":
        workers = k  # the k column doubles as the worker count
        builder = ShardedCoresetBuilder(
            FastCoreset(k=PARALLEL_K, seed=0),
            n_shards=PARALLEL_SHARDS,
            coreset_size_per_shard=40 * PARALLEL_K,
            seed=3,
        )
        process = ProcessExecutor(workers=workers)
        optimized = _timed(lambda: builder.build(points, executor=process), repeats)
        # The "seed" column is the serial baseline of the identical build.
        seed_time = _best_of(lambda: builder.build(points, executor=SerialExecutor()), repeats)
    else:
        raise ValueError(f"unknown component {component!r}")
    # Interleave the remaining repeats optimized/seed/optimized/seed instead
    # of timing one side to completion before starting the other: host-level
    # speed drift on shared machines spans minutes, so back-to-back blocks
    # land the drift on one side of the ratio only (observed ±15% swings on
    # bit-identical builds), while alternation cancels it.  The best-of-R
    # minima are unchanged on a quiet machine.
    opt_fn, opt_repeats = pair["optimized"]
    seed_fn, seed_repeats = pair["seed"]
    for rep in range(1, max(opt_repeats, seed_repeats)):
        if rep < opt_repeats:
            optimized = min(optimized, _one_shot(opt_fn))
        if rep < seed_repeats:
            seed_time = min(seed_time, _one_shot(seed_fn))
    if spans and optimized_fn is not None:
        with observability.tracing() as recorder:
            optimized_fn()
        extras["spans"] = {
            span_name: {
                "count": rollup["count"],
                "wall_seconds": round(rollup["wall_seconds"], 6),
                "cpu_seconds": round(rollup["cpu_seconds"], 6),
            }
            for span_name, rollup in recorder.metrics()["spans"].items()
        }
    cores = available_cores()
    row = {
        "name": name,
        "component": component,
        "n": n,
        "d": d,
        "k": k,
        "cores": cores,
        "seed_seconds": round(seed_time, 6),
        "optimized_seconds": round(optimized, 6),
        "speedup": round(seed_time / optimized, 3),
    }
    row.update(extras)
    if component in PARALLEL_COMPONENTS and cores < k:  # k carries workers
        row["informational"] = True
    if component in NATIVE_COMPONENTS and row.get("kernel_tier") != "native":
        # Fallback tier: the "optimized" side ran the same numpy paths as
        # the baseline, so the ratio guards nothing on this machine.
        row["informational"] = True
    return row


def check_regression(previous: dict, results: list) -> list:
    """Return human-readable regression messages (empty when clean).

    The compared quantity is the optimized-to-seed time *ratio* of each
    tracked workload, not absolute seconds: the seed implementation is
    re-timed in the same process on the same hardware, so the ratio is
    machine-independent and a recorded JSON from faster or slower hardware
    neither blocks nor masks anything.
    """
    messages = []
    old_by_name = {w["name"]: w for w in previous.get("workloads", [])}
    for workload in results:
        old = old_by_name.get(workload["name"])
        if old is None or old.get("seed_seconds", 0) <= 0:
            continue
        if old.get("informational") or workload.get("informational"):
            # Worker counts beyond the recording (or replaying) machine's
            # cores: the ratio measures scheduler luck, not code.
            continue
        tolerance = COMPONENT_TOLERANCE.get(workload["component"], REGRESSION_TOLERANCE)
        before = old["optimized_seconds"] / old["seed_seconds"]
        after = workload["optimized_seconds"] / workload["seed_seconds"]
        if after > before * (1.0 + tolerance):
            messages.append(
                f"{workload['name']}: optimized/seed time ratio regressed "
                f"{before:.3f} -> {after:.3f} (+{(after / before - 1) * 100:.0f}%, "
                f"tolerance {tolerance * 100:.0f}%)"
            )
    return messages


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--full", action="store_true", help="add the larger sweep workloads")
    parser.add_argument("--repeats", type=int, default=3, help="best-of-R timing (default 3)")
    parser.add_argument(
        "--check-regression",
        action="store_true",
        help="refuse to overwrite the JSON when a tracked workload regressed >20%%",
    )
    parser.add_argument(
        "--check-only",
        action="store_true",
        help="compare against the recorded JSON and exit non-zero on regression "
        "WITHOUT rewriting it (the `make bench-check` smoke)",
    )
    parser.add_argument(
        "--workloads",
        nargs="+",
        metavar="NAME",
        help="restrict the run to the named workloads (default: all tracked)",
    )
    parser.add_argument(
        "--components",
        nargs="+",
        metavar="COMPONENT",
        help="restrict the run to workloads of the named components",
    )
    parser.add_argument(
        "--serial-only",
        action="store_true",
        help="restrict the run to non-pool components (everything outside "
        "PARALLEL_COMPONENTS) — the CI's strict gate, kept in one place so "
        "new serial components are covered automatically",
    )
    parser.add_argument(
        "--spans",
        action="store_true",
        help="after the timed repeats, re-run each workload's optimized side "
        "once with tracing enabled and attach per-span rollups (count, wall, "
        "cpu) to the row — a breakdown column, never part of the timing",
    )
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)

    workloads = QUICK_WORKLOADS + (FULL_EXTRA if args.full else [])
    if args.workloads:
        by_name = {w[0]: w for w in QUICK_WORKLOADS + FULL_EXTRA}
        unknown = [name for name in args.workloads if name not in by_name]
        if unknown:
            parser.error(f"unknown workloads: {', '.join(unknown)}")
        workloads = [by_name[name] for name in args.workloads]
    if args.components:
        selected = []
        for component in args.components:
            selected.extend(COMPONENT_GROUPS.get(component, [component]))
        known = {w[4] for w in QUICK_WORKLOADS + FULL_EXTRA}
        unknown = [c for c in selected if c not in known]
        if unknown:
            parser.error(f"unknown components: {', '.join(unknown)}")
        workloads = [w for w in workloads if w[4] in selected]
        if not workloads:
            parser.error("the selected components match no workloads")
    if args.serial_only:
        workloads = [w for w in workloads if w[4] not in PARALLEL_COMPONENTS]
        if not workloads:
            parser.error("the selected components match no workloads")
    # Resolve the native kernel tier up front: first use runs the provider
    # build/load plus every per-kernel verifier, a one-time cost that must
    # not land inside the first timed repeat of a --repeats 1 replay.
    native_status()

    results = []
    for name, n, d, k, component in workloads:
        result = run_workload(name, n, d, k, component, args.repeats, spans=args.spans)
        print(
            f"{name:36s} seed {result['seed_seconds']:8.4f}s   "
            f"optimized {result['optimized_seconds']:8.4f}s   "
            f"speedup {result['speedup']:6.2f}x"
        )
        results.append(result)

    payload = {
        "benchmark": "hotpaths",
        "repeats": args.repeats,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "regression_tolerance": REGRESSION_TOLERANCE,
        "native": native_status(),
        "workloads": results,
    }

    previous = json.loads(args.output.read_text()) if args.output.exists() else None

    if args.check_only and previous is None:
        print(f"check-only: no recorded baseline at {args.output}", file=sys.stderr)
        return 1

    if previous is not None and (args.check_regression or args.check_only):
        messages = check_regression(previous, results)
        if messages:
            print("\nREGRESSION — tracked ratios degraded beyond tolerance", file=sys.stderr)
            for message in messages:
                print("  *", message, file=sys.stderr)
            return 1

    if args.check_only:
        print(f"\ncheck-only: tracked workloads within tolerance of {args.output}")
        return 0

    if previous is not None and (args.workloads or args.components or args.serial_only):
        # A partial (--workloads/--components/--serial-only) run only
        # refreshes the rows it re-timed; every other tracked baseline row
        # is carried forward so the regression guards keep their
        # comparison basis.
        rerun = {w["name"] for w in results}
        carried = [w for w in previous.get("workloads", []) if w["name"] not in rerun]
        payload["workloads"] = carried + results

    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

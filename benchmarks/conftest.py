"""Shared fixtures for the benchmark harnesses.

Every benchmark regenerates one table or figure of the paper by calling the
corresponding harness in :mod:`repro.experiments` exactly once (pytest-benchmark's
``pedantic`` mode with a single round) and printing the resulting rows.  Set
``REPRO_FULL_SCALE=1`` to run paper-sized instances; the default quick scale
keeps the whole suite to a few minutes.

Run with ``pytest benchmarks/ --benchmark-only -s`` to see the reproduced
tables inline.
"""

from __future__ import annotations

from typing import Callable, Sequence

import pytest

from repro.config import ExperimentScale
from repro.evaluation.tables import ExperimentRow, format_table


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    """Experiment scale used by every benchmark (quick unless REPRO_FULL_SCALE=1)."""
    return ExperimentScale.from_environment()


@pytest.fixture(scope="session")
def bench_scale() -> ExperimentScale:
    """A smaller scale for the heaviest sweeps so the default run stays fast."""
    base = ExperimentScale.from_environment()
    if base.dataset_fraction >= 1.0:
        return base
    return ExperimentScale(
        synthetic_n=6_000,
        synthetic_d=15,
        k_small=15,
        k_large=25,
        m_scalar=base.m_scalar,
        repetitions=2,
        dataset_fraction=0.01,
    )


@pytest.fixture
def run_once() -> Callable:
    """Run a harness exactly once under pytest-benchmark and return its rows."""

    def runner(benchmark, function, *args, **kwargs):
        return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner


@pytest.fixture
def show() -> Callable[[str, Sequence[ExperimentRow], Sequence[str]], None]:
    """Print a harness result table beneath the benchmark output."""

    def printer(title: str, rows: Sequence[ExperimentRow], value_names: Sequence[str]) -> None:
        print(f"\n=== {title} ===")
        print(format_table(rows, value_names=value_names))

    return printer

"""Benchmark regenerating Table 1: Fast-kmeans++ runtime as r ~ log(spread) grows.

Paper shape to reproduce: the mean seeding runtime increases monotonically
with ``r`` (13.5 s → 16.2 s for r = 20 → 50 on the authors' machine); here
the absolute numbers are smaller but the monotone growth with the quadtree
depth must hold.
"""

from repro.experiments import table1_spread_runtime


def test_table1_spread_runtime(benchmark, scale, run_once, show):
    rows = run_once(
        benchmark,
        table1_spread_runtime,
        scale=scale,
        r_values=(10, 20, 30, 40),
        k=min(50, scale.k_small),
        repetitions=max(1, scale.repetitions - 1),
    )
    show("Table 1: Fast-kmeans++ runtime vs r ~ log(spread)", rows, ["runtime_mean", "runtime_std"])
    runtimes = [row.values["runtime_mean"] for row in rows]
    # The paper's qualitative claim: runtime grows with the spread parameter.
    assert runtimes[-1] >= runtimes[0] * 0.9
    assert len(rows) == 4
